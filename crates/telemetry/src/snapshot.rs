//! Point-in-time copies of a lock's telemetry, with `diff`/`merge`
//! algebra for interval profiling.

use crate::event::LockEvent;
use crate::hist::HistogramSnapshot;

/// Everything one lock's telemetry recorded, copied at one instant.
///
/// Snapshots support interval arithmetic: `later.diff(&earlier)` isolates
/// the events of a measurement window (how `lockstat`-style live
/// profiling works), and `merge` accumulates repeated runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSnapshot {
    /// Instance name (from registration / rename).
    pub name: String,
    /// Lock algorithm (e.g. `"FOLL"`).
    pub kind: String,
    /// Event counts, indexed by [`LockEvent::index`].
    pub events: [u64; LockEvent::COUNT],
    /// `lock_read` latency (entry to success), ns.
    pub read_acquire: HistogramSnapshot,
    /// `lock_write` latency (entry to success), ns.
    pub write_acquire: HistogramSnapshot,
    /// Read-hold time (success to release), ns.
    pub read_hold: HistogramSnapshot,
    /// Write-hold time (success to release), ns.
    pub write_hold: HistogramSnapshot,
}

impl LockSnapshot {
    /// An all-zero snapshot (useful as a `diff`/`merge` identity).
    pub fn empty(name: &str, kind: &str) -> Self {
        Self {
            name: name.to_string(),
            kind: kind.to_string(),
            events: [0; LockEvent::COUNT],
            read_acquire: HistogramSnapshot::default(),
            write_acquire: HistogramSnapshot::default(),
            read_hold: HistogramSnapshot::default(),
            write_hold: HistogramSnapshot::default(),
        }
    }

    /// The count for one event.
    #[inline]
    pub fn get(&self, event: LockEvent) -> u64 {
        self.events[event.index()]
    }

    /// Total read acquisitions recorded (fast + slow path).
    pub fn reads(&self) -> u64 {
        self.get(LockEvent::ReadFast) + self.get(LockEvent::ReadSlow)
    }

    /// Total write acquisitions recorded (fast + slow path).
    pub fn writes(&self) -> u64 {
        self.get(LockEvent::WriteFast) + self.get(LockEvent::WriteSlow)
    }

    /// Shared root writes per acquisition — the paper's §5 scalability
    /// metric (lower is better; the C-SNZI tree policy drives it toward
    /// zero on the read path). `None` if nothing was recorded.
    pub fn root_writes_per_acquire(&self) -> Option<f64> {
        let acquires = self.reads() + self.writes();
        if acquires == 0 {
            return None;
        }
        Some(self.get(LockEvent::CsnziRootWrite) as f64 / acquires as f64)
    }

    /// The events of the window between `earlier` and `self` (saturating;
    /// histogram maxima are carried from `self`).
    pub fn diff(&self, earlier: &LockSnapshot) -> LockSnapshot {
        let mut out = self.clone();
        for (a, b) in out.events.iter_mut().zip(earlier.events.iter()) {
            *a = a.saturating_sub(*b);
        }
        out.read_acquire = self.read_acquire.diff(&earlier.read_acquire);
        out.write_acquire = self.write_acquire.diff(&earlier.write_acquire);
        out.read_hold = self.read_hold.diff(&earlier.read_hold);
        out.write_hold = self.write_hold.diff(&earlier.write_hold);
        out
    }

    /// Accumulates another snapshot into this one (event-wise and
    /// bucket-wise addition; used to aggregate repeated benchmark runs).
    pub fn merge(&mut self, other: &LockSnapshot) {
        for (a, b) in self.events.iter_mut().zip(other.events.iter()) {
            *a += b;
        }
        self.read_acquire.merge(&other.read_acquire);
        self.write_acquire.merge(&other.write_acquire);
        self.read_hold.merge(&other.read_hold);
        self.write_hold.merge(&other.write_hold);
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.iter().all(|&c| c == 0)
            && self.read_acquire.is_empty()
            && self.write_acquire.is_empty()
            && self.read_hold.is_empty()
            && self.write_hold.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_isolates_a_window() {
        let mut a = LockSnapshot::empty("l", "TEST");
        a.events[LockEvent::ReadFast.index()] = 10;
        let mut b = a.clone();
        b.events[LockEvent::ReadFast.index()] = 25;
        b.events[LockEvent::Timeout.index()] = 2;
        let d = b.diff(&a);
        assert_eq!(d.get(LockEvent::ReadFast), 15);
        assert_eq!(d.get(LockEvent::Timeout), 2);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LockSnapshot::empty("l", "TEST");
        a.events[LockEvent::WriteSlow.index()] = 1;
        let mut b = LockSnapshot::empty("l", "TEST");
        b.events[LockEvent::WriteSlow.index()] = 2;
        a.merge(&b);
        assert_eq!(a.writes(), 3);
    }

    #[test]
    fn root_writes_per_acquire_metric() {
        let mut s = LockSnapshot::empty("l", "TEST");
        assert!(s.root_writes_per_acquire().is_none());
        s.events[LockEvent::ReadFast.index()] = 8;
        s.events[LockEvent::WriteFast.index()] = 2;
        s.events[LockEvent::CsnziRootWrite.index()] = 5;
        assert_eq!(s.root_writes_per_acquire(), Some(0.5));
    }
}
