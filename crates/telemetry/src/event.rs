//! The event taxonomy: every countable thing a lock slow path can do.
//!
//! The set follows §5 of the paper and the adaptive-lock literature
//! (BRAVO, Fissile Locks): what a bias/adaptation policy needs to know is
//! *where acquisitions land* (fast vs. slow path, direct vs. tree C-SNZI
//! arrival), *how releases travel* (hand-offs, grant cascades), and *how
//! often waits are abandoned* (timeouts, cancellations). Shared-write
//! counters from `oll_csnzi::stats` are absorbed as first-class events so
//! one snapshot carries the whole contention picture.

/// One countable lock event. `repr(usize)` so an event doubles as an
/// index into the per-shard counter array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum LockEvent {
    /// A read acquisition completed on the fast path (no queueing, no
    /// waiting on another thread).
    ReadFast = 0,
    /// A read acquisition entered the slow path (queued or waited).
    ReadSlow,
    /// A write acquisition completed on the fast path.
    WriteFast,
    /// A write acquisition entered the slow path.
    WriteSlow,
    /// A C-SNZI arrival landed directly on the shared root word.
    ArriveDirect,
    /// A C-SNZI arrival landed on a tree leaf (distributed cache line).
    ArriveTree,
    /// A release handed the lock to a waiting writer.
    HandoffToWriter,
    /// A release handed the lock to one or more waiting reader groups.
    HandoffToReaders,
    /// A grant skipped over an abandoned (cancelled) queue node and
    /// released on its behalf (FOLL/ROLL cascade).
    GrantCascade,
    /// A timed acquisition gave up at its deadline.
    Timeout,
    /// A cancellation had to undo a partial acquisition (a queued waiter
    /// was excised, a C-SNZI arrival departed, or a node was abandoned).
    Cancel,
    /// A sole-reader upgrade to a write hold succeeded.
    Upgrade,
    /// An upgrade attempt failed (other readers present).
    UpgradeFail,
    /// A write hold was downgraded to a read hold.
    Downgrade,
    /// The C-SNZI root word was successfully written (shared cache line).
    CsnziRootWrite,
    /// A C-SNZI tree node was successfully written (distributed line).
    CsnziNodeWrite,
    /// A CAS on the C-SNZI root word failed (wasted shared-line traffic).
    CsnziRootCasFail,
    /// An adaptive C-SNZI inflated: built (or re-activated) its tree
    /// after measuring root contention.
    CsnziInflate,
    /// An adaptive C-SNZI deflated back to root-only arrivals after a
    /// quiet period with no tree surplus.
    CsnziDeflate,
    /// A handle's cached C-SNZI leaf missed (leaf-level CAS failed) and
    /// the handle migrated to a neighbouring leaf.
    CsnziLeafMigrate,
    /// A biased (BRAVO) read acquisition completed through the global
    /// visible-readers table, bypassing the underlying lock entirely.
    BiasGrant,
    /// A writer revoked reader bias: cleared `rbias` and waited out every
    /// published slot before proceeding.
    BiasRevoke,
    /// A biased reader found its hashed slot occupied and fell back to
    /// the underlying lock.
    BiasSlotCollision,
    /// Reader bias re-armed after the adaptive inhibit window elapsed.
    BiasRearm,
    /// A write holder panicked in its critical section and the lock's
    /// `Poison` hazard policy marked the lock poisoned.
    Poisoned,
    /// A poison mark was cleared (`Hazard::clear_poison`).
    PoisonCleared,
    /// A watched blocker found a wait-for cycle through itself and
    /// abandoned the acquisition (`AcquireError::DeadlockDetected`).
    DeadlockDetected,
    /// The starvation watchdog saw a watched writer outwait the stall
    /// threshold (counted at each escalation below degradation).
    WatchdogStall,
    /// The watchdog degraded the lock: reader bias disabled, forced
    /// fair hand-off until a write completes.
    BiasDegraded,
    /// An async acquisition stored its task waker and returned
    /// `Pending` (the futures-native analogue of parking a thread).
    WakerStored,
    /// A grant found a stored waker and woke it (the grantee was
    /// suspended; absence means the grant won the register race).
    WakerWoken,
    /// A cohort release handed the write lock to a same-socket waiter
    /// without touching the global queue (batched NUMA hand-off).
    CohortLocalHandoff,
    /// A cohort release published the write lock outward: the global
    /// queue hand-off crossed (or may cross) a socket boundary.
    CohortRemoteHandoff,
    /// A cohort release hit the batch bound with local waiters still
    /// queued and released globally instead (the starvation bound).
    CohortBatchExhausted,
    /// The self-tuning controller closed a sampling window and evaluated
    /// its decision table (one count per completed window, not per
    /// slow-path entry).
    TunerSample,
    /// The controller changed policy: stored new knob values (bias
    /// arm/disarm, deflation hysteresis, backoff caps, cohort batch)
    /// after the regime held for the full hysteresis requirement.
    TunerFlip,
    /// The controller saw a regime change but held the current policy —
    /// hysteresis (or the decision-rate cap) suppressed the flip.
    TunerHold,
}

impl LockEvent {
    /// Number of event kinds (the counter-array length).
    pub const COUNT: usize = 37;

    /// Every event, in counter-index order.
    pub const ALL: [LockEvent; Self::COUNT] = [
        LockEvent::ReadFast,
        LockEvent::ReadSlow,
        LockEvent::WriteFast,
        LockEvent::WriteSlow,
        LockEvent::ArriveDirect,
        LockEvent::ArriveTree,
        LockEvent::HandoffToWriter,
        LockEvent::HandoffToReaders,
        LockEvent::GrantCascade,
        LockEvent::Timeout,
        LockEvent::Cancel,
        LockEvent::Upgrade,
        LockEvent::UpgradeFail,
        LockEvent::Downgrade,
        LockEvent::CsnziRootWrite,
        LockEvent::CsnziNodeWrite,
        LockEvent::CsnziRootCasFail,
        LockEvent::CsnziInflate,
        LockEvent::CsnziDeflate,
        LockEvent::CsnziLeafMigrate,
        LockEvent::BiasGrant,
        LockEvent::BiasRevoke,
        LockEvent::BiasSlotCollision,
        LockEvent::BiasRearm,
        LockEvent::Poisoned,
        LockEvent::PoisonCleared,
        LockEvent::DeadlockDetected,
        LockEvent::WatchdogStall,
        LockEvent::BiasDegraded,
        LockEvent::WakerStored,
        LockEvent::WakerWoken,
        LockEvent::CohortLocalHandoff,
        LockEvent::CohortRemoteHandoff,
        LockEvent::CohortBatchExhausted,
        LockEvent::TunerSample,
        LockEvent::TunerFlip,
        LockEvent::TunerHold,
    ];

    /// Stable snake_case name, used as the JSON key and the text-report
    /// row label.
    pub fn name(self) -> &'static str {
        match self {
            LockEvent::ReadFast => "read_fast",
            LockEvent::ReadSlow => "read_slow",
            LockEvent::WriteFast => "write_fast",
            LockEvent::WriteSlow => "write_slow",
            LockEvent::ArriveDirect => "arrive_direct",
            LockEvent::ArriveTree => "arrive_tree",
            LockEvent::HandoffToWriter => "handoff_to_writer",
            LockEvent::HandoffToReaders => "handoff_to_readers",
            LockEvent::GrantCascade => "grant_cascade",
            LockEvent::Timeout => "timeout",
            LockEvent::Cancel => "cancel",
            LockEvent::Upgrade => "upgrade",
            LockEvent::UpgradeFail => "upgrade_fail",
            LockEvent::Downgrade => "downgrade",
            LockEvent::CsnziRootWrite => "csnzi_root_write",
            LockEvent::CsnziNodeWrite => "csnzi_node_write",
            LockEvent::CsnziRootCasFail => "csnzi_root_cas_fail",
            LockEvent::CsnziInflate => "csnzi_inflate",
            LockEvent::CsnziDeflate => "csnzi_deflate",
            LockEvent::CsnziLeafMigrate => "csnzi_leaf_migrate",
            LockEvent::BiasGrant => "bias_grant",
            LockEvent::BiasRevoke => "bias_revoke",
            LockEvent::BiasSlotCollision => "bias_slot_collision",
            LockEvent::BiasRearm => "bias_rearm",
            LockEvent::Poisoned => "poisoned",
            LockEvent::PoisonCleared => "poison_cleared",
            LockEvent::DeadlockDetected => "deadlock_detected",
            LockEvent::WatchdogStall => "watchdog_stall",
            LockEvent::BiasDegraded => "bias_degraded",
            LockEvent::WakerStored => "waker_stored",
            LockEvent::WakerWoken => "waker_woken",
            LockEvent::CohortLocalHandoff => "cohort_local_handoff",
            LockEvent::CohortRemoteHandoff => "cohort_remote_handoff",
            LockEvent::CohortBatchExhausted => "cohort_batch_exhausted",
            LockEvent::TunerSample => "tuner_sample",
            LockEvent::TunerFlip => "tuner_flip",
            LockEvent::TunerHold => "tuner_hold",
        }
    }

    /// The counter-array index of this event.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_in_index_order_and_complete() {
        assert_eq!(LockEvent::ALL.len(), LockEvent::COUNT);
        for (i, e) in LockEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i, "{}", e.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = LockEvent::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), LockEvent::COUNT);
    }
}
