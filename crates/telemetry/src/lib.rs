//! Lock telemetry and contention profiling for the OLL family.
//!
//! The paper's whole argument is about *where cache lines bounce*:
//! fast-path reads that stay on a distributed C-SNZI leaf are scalable,
//! slow-path entries and shared root writes are not. This crate counts
//! exactly those things — per lock, per thread shard — plus log2
//! histograms of acquisition latency and hold time, so a `fig5
//! --telemetry` run can show *why* a curve bends, not just that it does.
//!
//! # Zero cost when disabled
//!
//! Everything locks embed goes through the [`Telemetry`] and [`Timer`]
//! facades. Without this crate's `enabled` feature (exposed downstream
//! as `telemetry`) both are zero-sized and every recording method is an
//! empty `#[inline]` function: no atomics, no branches, no `Instant`
//! reads on any path. The snapshot/report types stay compiled either way
//! so tooling code needs no `cfg` of its own — a disabled build just
//! never produces a snapshot.
//!
//! # Architecture
//!
//! - [`LockEvent`] — the event taxonomy (fast/slow paths, arrivals,
//!   hand-offs, cascades, timeouts, C-SNZI shared writes).
//! - [`counters::LockTelemetry`] — per-lock sharded counters +
//!   histograms, behind `Arc`.
//! - [`registry`] — weak global registry of live instruments;
//!   [`registry::snapshot_all`] sweeps the fleet.
//! - [`LockSnapshot`] / [`HistogramSnapshot`] — copy-out types with
//!   `diff`/`merge` interval algebra.
//! - [`report`] — text and schema-versioned JSON renderers.

#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod hist;
pub mod registry;
pub mod report;
pub mod snapshot;

pub use event::LockEvent;
pub use hist::{HistogramSnapshot, BUCKETS};
pub use snapshot::LockSnapshot;

#[cfg(feature = "enabled")]
use counters::LockTelemetry;
#[cfg(feature = "enabled")]
use std::sync::Arc;

#[cfg(feature = "trace")]
use oll_trace::TraceKind;

/// Maps a counted event onto its trace-record kind: the leading
/// `TraceKind` discriminants mirror [`LockEvent`] one-for-one (pinned
/// by a test below).
#[cfg(feature = "trace")]
#[inline]
fn trace_kind(event: LockEvent) -> TraceKind {
    TraceKind::from_u8(event.index() as u8).expect("LockEvent taxonomy is a TraceKind prefix")
}

/// Handle to one lock's telemetry, embedded in the lock itself.
///
/// With the `enabled` feature off this is a zero-sized type and every
/// method is an empty inline function. With it on, the handle is either
/// *active* (created by [`Telemetry::register`], holding shared counter
/// state) or *inactive* ([`Telemetry::disabled`], still recording
/// nothing) — so a lock constructed outside an instrumented builder pays
/// only a null check.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    #[cfg(feature = "enabled")]
    inner: Option<Arc<LockTelemetry>>,
}

impl Telemetry {
    /// Whether telemetry support is compiled in at all.
    pub const fn enabled() -> bool {
        cfg!(feature = "enabled")
    }

    /// An inactive handle that records nothing (the [`Default`]).
    pub const fn disabled() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            inner: None,
        }
    }

    /// Creates an active handle for a lock of algorithm `kind`, named
    /// `"<kind>#<seq>"`, and registers it with the global [`registry`].
    /// Compiles to [`Telemetry::disabled`] when the feature is off.
    pub fn register(kind: &'static str) -> Self {
        #[cfg(feature = "enabled")]
        {
            let name = format!("{kind}#{}", registry::next_seq());
            let inner = Arc::new(LockTelemetry::new(name, kind));
            registry::register(&inner);
            Self { inner: Some(inner) }
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = kind;
            Self::disabled()
        }
    }

    /// Whether this handle actually records (feature on *and* active).
    #[inline]
    pub fn is_active(&self) -> bool {
        #[cfg(feature = "enabled")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "enabled"))]
        {
            false
        }
    }

    /// Renames the instance for reporting (e.g. `"fig5/GOLL"`).
    pub fn rename(&self, name: &str) {
        #[cfg(feature = "enabled")]
        if let Some(t) = &self.inner {
            t.set_name(name);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = name;
        }
    }

    /// The instance name, if active.
    pub fn name(&self) -> Option<String> {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().map(|t| t.name())
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }

    /// Counts one occurrence of `event`.
    #[inline]
    pub fn incr(&self, event: LockEvent) {
        self.add(event, 1);
    }

    /// Counts `n` occurrences of `event`. With the `trace` feature, one
    /// record of the matching kind also lands in the calling thread's
    /// trace ring (a batched count is still a single occurrence in
    /// time, so it traces as one record).
    #[inline]
    pub fn add(&self, event: LockEvent, n: u64) {
        #[cfg(feature = "enabled")]
        if let Some(t) = &self.inner {
            t.add(event, n);
            #[cfg(feature = "trace")]
            oll_trace::emit(t.trace_id(), trace_kind(event), 0);
        }
        #[cfg(not(feature = "enabled"))]
        {
            let _ = (event, n);
        }
    }

    /// This instance's `oll_trace` lock id, when tracing is compiled in
    /// and the handle is active (tests use it to filter timelines).
    pub fn trace_id(&self) -> Option<u32> {
        #[cfg(feature = "trace")]
        {
            self.inner.as_ref().map(|t| t.trace_id())
        }
        #[cfg(not(feature = "trace"))]
        {
            None
        }
    }

    /// Emits a bare trace marker of `kind` carrying `token` (no counter
    /// touched). Empty inline no-op without the `trace` feature.
    #[inline]
    fn trace_mark(&self, kind: oll_trace::TraceKind, token: u64) {
        #[cfg(feature = "trace")]
        if let Some(t) = &self.inner {
            oll_trace::emit(t.trace_id(), kind, token);
        }
        #[cfg(not(feature = "trace"))]
        {
            let _ = (kind, token);
        }
    }

    /// Starts a read acquisition: a [`Telemetry::timer`] plus a
    /// `read_begin` trace marker opening the acquisition span.
    #[inline]
    pub fn begin_read(&self) -> Timer {
        self.trace_mark(oll_trace::TraceKind::ReadBegin, 0);
        self.timer()
    }

    /// Starts a write acquisition: a [`Telemetry::timer`] plus a
    /// `write_begin` trace marker opening the acquisition span.
    #[inline]
    pub fn begin_write(&self) -> Timer {
        self.trace_mark(oll_trace::TraceKind::WriteBegin, 0);
        self.timer()
    }

    /// Marks that the calling thread parked on `token` (a waiter-node
    /// reference or wait-event address). The matching
    /// [`Telemetry::trace_granted`] from the releasing thread stitches
    /// the hand-off edge.
    #[inline]
    pub fn trace_enqueued(&self, token: u64) {
        self.trace_mark(oll_trace::TraceKind::Enqueued, token);
    }

    /// Marks that the calling thread granted ownership to the waiter(s)
    /// parked on `token`.
    #[inline]
    pub fn trace_granted(&self, token: u64) {
        self.trace_mark(oll_trace::TraceKind::Granted, token);
    }

    /// Counts a controller policy flip ([`LockEvent::TunerFlip`]) and,
    /// under `trace`, emits the matching record carrying `token` — the
    /// packed `old_regime << 8 | new_regime` pair, so the analyzer can
    /// label the transition (plain [`Telemetry::incr`] always traces
    /// token 0).
    #[inline]
    pub fn record_policy_flip(&self, token: u64) {
        let _ = token;
        #[cfg(feature = "enabled")]
        if let Some(t) = &self.inner {
            t.add(LockEvent::TunerFlip, 1);
            #[cfg(feature = "trace")]
            oll_trace::emit(t.trace_id(), oll_trace::TraceKind::TunerFlip, token);
        }
    }

    /// Starts a timer if this handle is active (otherwise the timer is
    /// inert and never reads the clock).
    #[inline]
    pub fn timer(&self) -> Timer {
        #[cfg(feature = "enabled")]
        {
            Timer {
                start: self.inner.as_ref().map(|_| std::time::Instant::now()),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Timer {}
        }
    }

    /// Records a completed `lock_read` latency sample from `timer`, and
    /// (under `trace`) a `read_acquired` marker closing the span opened
    /// by [`Telemetry::begin_read`].
    #[inline]
    pub fn record_read_acquire(&self, timer: &Timer) {
        #[cfg(feature = "enabled")]
        if let (Some(t), Some(ns)) = (&self.inner, timer.elapsed_ns()) {
            t.read_acquire.record(ns);
        }
        self.trace_mark(oll_trace::TraceKind::ReadAcquired, 0);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = timer;
        }
    }

    /// Records a completed `lock_write` latency sample from `timer`,
    /// and (under `trace`) a `write_acquired` marker.
    #[inline]
    pub fn record_write_acquire(&self, timer: &Timer) {
        #[cfg(feature = "enabled")]
        if let (Some(t), Some(ns)) = (&self.inner, timer.elapsed_ns()) {
            t.write_acquire.record(ns);
        }
        self.trace_mark(oll_trace::TraceKind::WriteAcquired, 0);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = timer;
        }
    }

    /// Records a read-hold duration sample from `timer`, and (under
    /// `trace`) a `read_release` marker closing the hold span.
    #[inline]
    pub fn record_read_hold(&self, timer: &Timer) {
        #[cfg(feature = "enabled")]
        if let (Some(t), Some(ns)) = (&self.inner, timer.elapsed_ns()) {
            t.read_hold.record(ns);
        }
        self.trace_mark(oll_trace::TraceKind::ReadRelease, 0);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = timer;
        }
    }

    /// Records a write-hold duration sample from `timer`, and (under
    /// `trace`) a `write_release` marker.
    #[inline]
    pub fn record_write_hold(&self, timer: &Timer) {
        #[cfg(feature = "enabled")]
        if let (Some(t), Some(ns)) = (&self.inner, timer.elapsed_ns()) {
            t.write_hold.record(ns);
        }
        self.trace_mark(oll_trace::TraceKind::WriteRelease, 0);
        #[cfg(not(feature = "enabled"))]
        {
            let _ = timer;
        }
    }

    /// Copies out the current counts, if active.
    pub fn snapshot(&self) -> Option<LockSnapshot> {
        #[cfg(feature = "enabled")]
        {
            self.inner.as_ref().map(|t| t.snapshot())
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }

    /// Zeroes this lock's counters and histograms.
    pub fn reset(&self) {
        #[cfg(feature = "enabled")]
        if let Some(t) = &self.inner {
            t.reset();
        }
    }
}

/// A start-of-interval marker handed back by [`Telemetry::timer`].
///
/// Zero-sized with the feature off; with it on, inert timers (from an
/// inactive handle) skip the clock read entirely, so unprofiled locks
/// never call `Instant::now`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timer {
    #[cfg(feature = "enabled")]
    start: Option<std::time::Instant>,
}

impl Timer {
    /// An inert timer (the [`Default`]): recording from it is a no-op.
    pub const fn inactive() -> Self {
        Self {
            #[cfg(feature = "enabled")]
            start: None,
        }
    }

    /// Nanoseconds since the timer started, or `None` if inert.
    #[inline]
    pub fn elapsed_ns(&self) -> Option<u64> {
        #[cfg(feature = "enabled")]
        {
            self.start.map(|s| {
                let e = s.elapsed();
                e.as_secs()
                    .saturating_mul(1_000_000_000)
                    .saturating_add(u64::from(e.subsec_nanos()))
            })
        }
        #[cfg(not(feature = "enabled"))]
        {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_silent() {
        let t = Telemetry::disabled();
        assert!(!t.is_active());
        t.incr(LockEvent::ReadFast);
        t.rename("ignored");
        assert!(t.snapshot().is_none());
        assert!(t.name().is_none());
        let timer = t.timer();
        assert!(timer.elapsed_ns().is_none());
        t.record_read_acquire(&timer);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn registered_handle_records() {
        let t = Telemetry::register("TEST");
        assert!(t.is_active());
        assert!(t.name().unwrap().starts_with("TEST#"));
        t.rename("facade-test");
        t.incr(LockEvent::WriteSlow);
        t.add(LockEvent::HandoffToWriter, 2);
        let timer = t.timer();
        assert!(timer.elapsed_ns().is_some());
        t.record_write_acquire(&timer);
        let s = t.snapshot().unwrap();
        assert_eq!(s.name, "facade-test");
        assert_eq!(s.get(LockEvent::WriteSlow), 1);
        assert_eq!(s.get(LockEvent::HandoffToWriter), 2);
        assert_eq!(s.write_acquire.count, 1);
        t.reset();
        assert!(t.snapshot().unwrap().is_empty());
    }

    #[cfg(feature = "trace")]
    #[test]
    fn lock_event_taxonomy_is_trace_kind_prefix() {
        for e in LockEvent::ALL {
            assert_eq!(trace_kind(e).name(), e.name());
            assert_eq!(trace_kind(e).index(), e.index());
        }
    }

    #[cfg(feature = "trace")]
    #[test]
    fn facade_emits_trace_records() {
        let t = Telemetry::register("TEST");
        let id = t.trace_id().expect("active traced handle has an id");
        let session = oll_trace::TraceSession::begin();
        let timer = t.begin_write();
        t.incr(LockEvent::WriteSlow);
        t.trace_enqueued(0xabc);
        t.trace_granted(0xabc);
        t.record_write_acquire(&timer);
        let hold = t.timer();
        t.record_write_hold(&hold);
        let tl = session.collect().filter_lock(id);
        let kinds: Vec<_> = tl.records.iter().map(|r| r.kind).collect();
        use oll_trace::TraceKind as K;
        assert_eq!(
            kinds,
            vec![
                K::WriteBegin,
                K::WriteSlow,
                K::Enqueued,
                K::Granted,
                K::WriteAcquired,
                K::WriteRelease,
            ]
        );
        assert_eq!(tl.records[2].token, 0xabc);
        // Rename propagates into the trace lock registry.
        t.rename("facade/trace");
        assert_eq!(oll_trace::capture_all().lock_name(id), "facade/trace");
        // Inactive handles stay silent.
        let quiet = Telemetry::disabled();
        assert_eq!(quiet.trace_id(), None);
        let before = session.collect().filter_lock(id).records.len();
        quiet.trace_enqueued(1);
        quiet.incr(LockEvent::ReadFast);
        assert_eq!(session.collect().filter_lock(id).records.len(), before);
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_types_are_zero_sized() {
        assert_eq!(std::mem::size_of::<Telemetry>(), 0);
        assert_eq!(std::mem::size_of::<Timer>(), 0);
        assert!(!Telemetry::enabled());
        assert!(!Telemetry::register("TEST").is_active());
    }
}
