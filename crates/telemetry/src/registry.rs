//! The global registry of live, telemetry-enabled lock instances.
//!
//! Every lock built with telemetry on registers itself here under an
//! auto-generated `"<KIND>#<seq>"` name (rename via
//! [`Telemetry::rename`](crate::Telemetry::rename)). The registry holds
//! only weak references: dropping a lock unregisters it implicitly, and
//! dead entries are pruned on the next walk. `snapshot_all` + `diff` is
//! the `lockstat` workflow — snapshot, run the workload, snapshot again,
//! report the difference.

use crate::counters::LockTelemetry;
use crate::snapshot::LockSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, Weak};

fn entries() -> &'static Mutex<Vec<Weak<LockTelemetry>>> {
    static REGISTRY: OnceLock<Mutex<Vec<Weak<LockTelemetry>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Monotone instance sequence for auto-generated names.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn next_seq() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Adds a lock's telemetry to the registry (called on registration).
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn register(t: &Arc<LockTelemetry>) {
    let mut g = entries().lock().unwrap();
    g.retain(|w| w.strong_count() > 0);
    g.push(Arc::downgrade(t));
}

/// Snapshots every live registered lock, pruning dropped ones.
pub fn snapshot_all() -> Vec<LockSnapshot> {
    let mut out = Vec::new();
    let mut g = entries().lock().unwrap();
    g.retain(|w| match w.upgrade() {
        Some(t) => {
            out.push(t.snapshot());
            true
        }
        None => false,
    });
    out
}

/// Zeroes the counters of every live registered lock.
pub fn reset_all() {
    let mut g = entries().lock().unwrap();
    g.retain(|w| match w.upgrade() {
        Some(t) => {
            t.reset();
            true
        }
        None => false,
    });
}

/// Number of live registered locks.
pub fn live_count() -> usize {
    let mut g = entries().lock().unwrap();
    g.retain(|w| w.strong_count() > 0);
    g.len()
}

/// Pairs two registry sweeps by instance name and returns the per-lock
/// interval deltas (locks present only in `later` are passed through;
/// locks that vanished are dropped).
pub fn diff_sweeps(earlier: &[LockSnapshot], later: &[LockSnapshot]) -> Vec<LockSnapshot> {
    later
        .iter()
        .map(|l| match earlier.iter().find(|e| e.name == l.name) {
            Some(e) => l.diff(e),
            None => l.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LockEvent;

    #[test]
    fn register_snapshot_prune() {
        let t = Arc::new(LockTelemetry::new("reg-test-a".into(), "TEST"));
        register(&t);
        t.add(LockEvent::ReadFast, 7);
        let snaps = snapshot_all();
        let mine = snaps
            .iter()
            .find(|s| s.name == "reg-test-a")
            .expect("registered lock appears in sweep");
        assert_eq!(mine.get(LockEvent::ReadFast), 7);
        let live_before = live_count();
        drop(t);
        assert!(live_count() < live_before, "dropped lock is pruned");
        assert!(snapshot_all().iter().all(|s| s.name != "reg-test-a"));
    }

    #[test]
    fn diff_sweeps_pairs_by_name() {
        let t = Arc::new(LockTelemetry::new("reg-test-b".into(), "TEST"));
        register(&t);
        t.add(LockEvent::WriteSlow, 1);
        let before = snapshot_all();
        t.add(LockEvent::WriteSlow, 4);
        let after = snapshot_all();
        let delta = diff_sweeps(&before, &after);
        let mine = delta.iter().find(|s| s.name == "reg-test-b").unwrap();
        assert_eq!(mine.get(LockEvent::WriteSlow), 4);
    }
}
