//! Concurrent log2-bucketed histograms for latency and hold times.
//!
//! Same bucket layout as the workload harness's offline
//! `LatencyHistogram` (64 buckets, `bucket = floor(log2(ns))`, covering
//! 1 ns … ~9 s), but recordable concurrently: each bucket is a relaxed
//! `AtomicU64`, so a record is one `fetch_add` plus one `fetch_max` and
//! merging across locks is a vector add. Histograms are per-lock, not
//! per-shard — a record already touches a distribution-dependent bucket,
//! so the line-spread of the buckets themselves provides most of the
//! sharding effect; the hot monotone counters are the sharded ones (see
//! [`crate::counters`]).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets (1 ns up to ~2^63 ns).
pub const BUCKETS: usize = 64;

#[inline]
fn bucket_for(ns: u64) -> usize {
    // floor(log2(ns)) with ns = 0 mapping to bucket 0.
    (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
}

/// A concurrently recordable log2 histogram of nanosecond samples.
#[derive(Debug)]
pub struct AtomicHistogram {
    counts: [AtomicU64; BUCKETS],
    max_ns: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed; exact once quiescent).
    #[inline]
    pub fn record(&self, ns: u64) {
        self.counts[bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Reads the current contents (racy snapshot).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (b, c) in buckets.iter_mut().zip(self.counts.iter()) {
            *b = c.load(Ordering::Relaxed);
            count += *b;
        }
        HistogramSnapshot {
            buckets,
            count,
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the histogram.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of an [`AtomicHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` covers `[2^i, 2^(i+1))` ns
    /// (bucket 0 also absorbs 0 ns).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Largest recorded sample, ns.
    pub max_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            max_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Approximate percentile (upper bound of the containing bucket), ns.
    /// `p` in `[0, 1]`.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }

    /// Adds another snapshot's samples into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Bucket-wise difference (`self - earlier`), saturating at zero. The
    /// max is kept from `self` (maxima are not differentiable).
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        let mut count = 0u64;
        for (a, b) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *a = a.saturating_sub(*b);
            count += *a;
        }
        out.count = count;
        out
    }

    /// Whether any samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_for(0), 0);
        assert_eq!(bucket_for(1), 0);
        assert_eq!(bucket_for(2), 1);
        assert_eq!(bucket_for(1023), 9);
        assert_eq!(bucket_for(1024), 10);
        assert_eq!(bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn record_snapshot_percentile() {
        let h = AtomicHistogram::new();
        for _ in 0..99 {
            h.record(100);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_ns, 1_000_000);
        let p50 = s.percentile_ns(0.50);
        assert!((100..256).contains(&p50), "p50 = {p50}");
        assert!(s.percentile_ns(0.999) >= 524_287);
    }

    #[test]
    fn merge_and_diff_round_trip() {
        let h = AtomicHistogram::new();
        h.record(10);
        h.record(20);
        let before = h.snapshot();
        h.record(1000);
        let after = h.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.count, 1);
        let mut m = before;
        m.merge(&d);
        assert_eq!(m.count, after.count);
    }

    #[test]
    fn empty_is_zero() {
        let s = AtomicHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.percentile_ns(0.99), 0);
    }
}
