//! `--trace` plumbing shared by the workload binaries.
//!
//! Both `fig5` and `latency` (and `examples/lockstat.rs`) offer a
//! `--trace PATH` flag: start a [`TraceSession`] before the runs, then
//! hand the collected [`Timeline`] here to write the Chrome Trace Event
//! file (loadable in Perfetto or `chrome://tracing`), optionally an
//! `oll.trace` document and/or a folded-stack contention flamegraph
//! (`--flame`, consumable by `flamegraph.pl` and friends), and get back
//! the analyzer's text report.

use crate::json::render_trace_json;
use oll_trace::{analyze, render_chrome_trace, render_report_text, AnalyzerConfig, Timeline};
use std::io::Write as _;

/// Warns when a `--trace` flag can record nothing in this build.
pub fn warn_if_disabled(bin: &str) {
    if !oll_trace::enabled() {
        eprintln!(
            "warning: this binary was built without the `trace` feature; the \
             flight recorder is compiled out and the trace will be empty. \
             Rebuild with:\n  \
             cargo run -p oll-workloads --release --features trace --bin {bin} -- --trace out.json"
        );
    }
}

fn write_file(path: &str, contents: &str) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(contents.as_bytes())?;
    f.write_all(b"\n")
}

/// Writes the Perfetto JSON to `perfetto_path` (and, when given, the
/// `oll.trace` document to `doc_path` and the folded-stack contention
/// flamegraph to `flame_path`), returning the analyzer's text report
/// for printing.
pub fn write_outputs(
    tl: &Timeline,
    perfetto_path: &str,
    doc_path: Option<&str>,
    flame_path: Option<&str>,
) -> std::io::Result<String> {
    let report = analyze(tl, &AnalyzerConfig::default());
    write_file(perfetto_path, &render_chrome_trace(tl))?;
    if let Some(path) = doc_path {
        write_file(path, &render_trace_json(tl, &report))?;
    }
    if let Some(path) = flame_path {
        write_file(path, oll_obs::flame::render_folded(tl, &report).trim_end())?;
    }
    Ok(render_report_text(tl, &report))
}
