//! The async Figure 5 harness: massed *task* contention instead of
//! massed *thread* contention.
//!
//! The thread-based fig5 sweep tops out at a few dozen waiters — one per
//! OS thread. The async lock family's claim is different: waiters are
//! futures, so a bounded pool ([`crate::async_exec::Executor`]) can park
//! **millions** of concurrently queued acquisitions in a few hundred
//! megabytes and drain them through the C-SNZI grant cascade. This
//! module measures exactly that:
//!
//! 1. take the write lock so every spawned task must queue,
//! 2. spawn `tasks` lock-user futures (a `write_pct` slice acquire the
//!    write lock, a `cancel_pct` slice carry a deadline so the run
//!    exercises timeout/tombstone cancellation at scale),
//! 3. release the gate and wait for the pool to drain,
//! 4. report throughput, grant-latency percentiles, and the exit-state
//!    invariants (C-SNZI surplus and wait-queue length both zero).
//!
//! The `fig5_async` binary drives it and renders the result as an
//! `oll.fig5_async` JSON document, which `regen_results.sh` folds into
//! the committed `BENCH_fig5.json` trajectory file.

use crate::latency::{LatencyHistogram, LatencySummary};
use oll_async::AsyncRwLock;
use oll_telemetry::report::render_lock_json;
use oll_telemetry::LockSnapshot;
use oll_util::XorShift64;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Latency shards: tasks record into `shard[task % SHARDS]` so eight
/// workers rarely collide on one mutex.
const SHARDS: usize = 16;

/// Parameters of one async bench run.
#[derive(Debug, Clone)]
pub struct AsyncBenchConfig {
    /// Total lock-user tasks to spawn (the headline run uses 1_000_000).
    pub tasks: usize,
    /// Executor worker threads (the headline run uses 8).
    pub workers: usize,
    /// Percentage of tasks that acquire the write lock.
    pub write_pct: u32,
    /// Percentage of tasks that carry a deadline (and may therefore
    /// time out and exercise the tombstone-cancellation path).
    pub cancel_pct: u32,
    /// Deadline offset for the `cancel_pct` slice, from spawn time.
    pub deadline_ms: u64,
    /// PRNG seed for the write/cancel assignment.
    pub seed: u64,
}

impl AsyncBenchConfig {
    /// A small smoke-sized run (CI, unit tests).
    pub fn quick() -> Self {
        Self {
            tasks: 10_000,
            workers: 4,
            write_pct: 2,
            cancel_pct: 10,
            deadline_ms: 25,
            seed: 42,
        }
    }
}

/// Everything one async bench run produced.
#[derive(Debug, Clone)]
pub struct AsyncBenchResult {
    /// The configuration that produced this result.
    pub config: AsyncBenchConfig,
    /// Tasks that completed holding a read guard.
    pub granted_reads: u64,
    /// Tasks that completed holding a write guard.
    pub granted_writes: u64,
    /// Deadline tasks that timed out (cancelled via tombstone).
    pub timed_out: u64,
    /// Wall-clock for spawn + drain.
    pub elapsed: Duration,
    /// `tasks / elapsed` — completed lock-user tasks per second.
    pub tasks_per_sec: f64,
    /// Queue-to-grant latency percentiles over every *granted* task.
    pub grant_latency: LatencySummary,
    /// C-SNZI surplus after the pool drained (must be 0).
    pub surplus_at_exit: u64,
    /// Wait-queue length after the pool drained (must be 0).
    pub queued_at_exit: usize,
    /// The lock's contention profile (`None` unless built with the
    /// `telemetry` feature).
    pub telemetry: Option<LockSnapshot>,
}

impl AsyncBenchResult {
    /// Every spawned task is accounted for: granted or timed out.
    pub fn accounted(&self) -> bool {
        self.granted_reads + self.granted_writes + self.timed_out == self.config.tasks as u64
    }

    /// The exit-state invariants the harness promises: no leaked C-SNZI
    /// surplus, no leaked queue entries, every task accounted for.
    pub fn clean_exit(&self) -> bool {
        self.accounted() && self.surplus_at_exit == 0 && self.queued_at_exit == 0
    }
}

struct Counters {
    reads: AtomicU64,
    writes: AtomicU64,
    timed_out: AtomicU64,
}

/// Runs one async bench: spawns `config.tasks` futures against a single
/// [`AsyncRwLock`] on a `config.workers`-thread pool and drains them.
pub fn run_async_bench(config: &AsyncBenchConfig) -> AsyncBenchResult {
    let lock = Arc::new(
        AsyncRwLock::<u64>::builder()
            .concurrency(config.workers.max(1))
            .telemetry_name("ASYNC fig5")
            .build(0u64),
    );
    let exec = crate::async_exec::Executor::new(config.workers);
    let counters = Arc::new(Counters {
        reads: AtomicU64::new(0),
        writes: AtomicU64::new(0),
        timed_out: AtomicU64::new(0),
    });
    let shards: Arc<Vec<Mutex<LatencyHistogram>>> = Arc::new(
        (0..SHARDS)
            .map(|_| Mutex::new(LatencyHistogram::new()))
            .collect(),
    );

    let start = Instant::now();
    // Gate: hold the write lock so every task queues behind it; the
    // release below fires the grant cascade over the whole backlog.
    let gate = lock.try_write().expect("gate acquisition is uncontended");
    let mut rng = XorShift64::new(config.seed);
    for i in 0..config.tasks {
        let is_write = rng.percent(config.write_pct);
        let deadline = rng
            .percent(config.cancel_pct)
            .then(|| Instant::now() + Duration::from_millis(config.deadline_ms));
        let lock = Arc::clone(&lock);
        let counters = Arc::clone(&counters);
        let shards = Arc::clone(&shards);
        exec.spawn(async move {
            let t0 = Instant::now();
            let outcome = if is_write {
                let granted = match deadline {
                    Some(d) => match lock.write_deadline(d).await {
                        Ok(mut g) => {
                            *g += 1;
                            true
                        }
                        Err(_) => false,
                    },
                    None => {
                        *lock.write().await += 1;
                        true
                    }
                };
                granted.then_some(&counters.writes)
            } else {
                let granted = match deadline {
                    Some(d) => match lock.read_deadline(d).await {
                        Ok(g) => {
                            std::hint::black_box(*g);
                            true
                        }
                        Err(_) => false,
                    },
                    None => {
                        std::hint::black_box(*lock.read().await);
                        true
                    }
                };
                granted.then_some(&counters.reads)
            };
            match outcome {
                Some(counter) => {
                    counter.fetch_add(1, Ordering::Relaxed);
                    let ns = t0.elapsed().as_nanos() as u64;
                    shards[i % SHARDS].lock().unwrap().record(ns);
                }
                None => {
                    counters.timed_out.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    }
    drop(gate);
    exec.wait_idle();
    let elapsed = start.elapsed();
    drop(exec);

    let mut merged = LatencyHistogram::new();
    for shard in shards.iter() {
        merged.merge(&shard.lock().unwrap());
    }
    let mut telemetry = lock.telemetry().snapshot();
    if let Some(p) = &mut telemetry {
        p.name = format!(
            "ASYNC fig5 tasks={} workers={}",
            config.tasks, config.workers
        );
    }
    AsyncBenchResult {
        config: config.clone(),
        granted_reads: counters.reads.load(Ordering::Relaxed),
        granted_writes: counters.writes.load(Ordering::Relaxed),
        timed_out: counters.timed_out.load(Ordering::Relaxed),
        elapsed,
        tasks_per_sec: config.tasks as f64 / elapsed.as_secs_f64().max(1e-9),
        grant_latency: merged.summarize(),
        surplus_at_exit: lock.csnzi_snapshot().surplus(),
        queued_at_exit: lock.queued_waiters(),
        telemetry,
    }
}

/// Renders one async bench run as an `oll.fig5_async` document (same
/// versioning regime as the other OLL JSON schemas).
pub fn render_fig5_async_json(r: &AsyncBenchResult) -> String {
    use oll_telemetry::report::SCHEMA_VERSION;
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.fig5_async\",\"version\":{SCHEMA_VERSION},\
         \"tasks\":{},\"workers\":{},\"write_pct\":{},\"cancel_pct\":{},\
         \"deadline_ms\":{},\"seed\":{},\
         \"granted_reads\":{},\"granted_writes\":{},\"timed_out\":{},\
         \"elapsed_secs\":{:.6},\"tasks_per_sec\":{:.1},",
        r.config.tasks,
        r.config.workers,
        r.config.write_pct,
        r.config.cancel_pct,
        r.config.deadline_ms,
        r.config.seed,
        r.granted_reads,
        r.granted_writes,
        r.timed_out,
        r.elapsed.as_secs_f64(),
        r.tasks_per_sec,
    );
    let l = &r.grant_latency;
    let _ = write!(
        out,
        "\"grant_latency\":{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}},",
        l.count, l.p50_ns, l.p99_ns, l.p999_ns, l.max_ns
    );
    let telemetry = match &r.telemetry {
        Some(s) => render_lock_json(s),
        None => "null".to_string(),
    };
    let _ = write!(
        out,
        "\"surplus_at_exit\":{},\"queued_at_exit\":{},\"telemetry\":{}}}",
        r.surplus_at_exit, r.queued_at_exit, telemetry
    );
    out
}

/// A human-readable summary block for the terminal.
pub fn render_async_text(r: &AsyncBenchResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fig5_async: {} task(s) on {} worker thread(s) in {:.3}s ({:.0} tasks/s)",
        r.config.tasks,
        r.config.workers,
        r.elapsed.as_secs_f64(),
        r.tasks_per_sec,
    );
    let _ = writeln!(
        out,
        "  granted: {} read(s), {} write(s); timed out: {}",
        r.granted_reads, r.granted_writes, r.timed_out
    );
    let l = &r.grant_latency;
    let _ = writeln!(
        out,
        "  grant latency: p50 {}ns  p99 {}ns  p99.9 {}ns  max {}ns",
        l.p50_ns, l.p99_ns, l.p999_ns, l.max_ns
    );
    let _ = write!(
        out,
        "  exit state: surplus={} queued={} ({})",
        r.surplus_at_exit,
        r.queued_at_exit,
        if r.clean_exit() { "clean" } else { "LEAKED" },
    );
    out
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::json::parse::{self, Value};

    #[test]
    fn quick_bench_drains_cleanly() {
        let config = AsyncBenchConfig {
            tasks: 2_000,
            workers: 2,
            ..AsyncBenchConfig::quick()
        };
        let r = run_async_bench(&config);
        assert!(r.clean_exit(), "leaked exit state: {r:?}");
        assert!(r.granted_reads > 0);
        assert!(r.tasks_per_sec > 0.0);
    }

    #[test]
    fn async_json_round_trips() {
        let config = AsyncBenchConfig {
            tasks: 500,
            workers: 2,
            ..AsyncBenchConfig::quick()
        };
        let r = run_async_bench(&config);
        let doc = render_fig5_async_json(&r);
        let v = parse::parse(&doc).expect("fig5_async doc must parse");
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("oll.fig5_async")
        );
        assert_eq!(v.get("tasks").and_then(Value::as_u64), Some(500));
        let granted = v.get("granted_reads").and_then(Value::as_u64).unwrap()
            + v.get("granted_writes").and_then(Value::as_u64).unwrap()
            + v.get("timed_out").and_then(Value::as_u64).unwrap();
        assert_eq!(granted, 500);
        assert_eq!(v.get("surplus_at_exit").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("queued_at_exit").and_then(Value::as_u64), Some(0));
        assert!(v.get("grant_latency").is_some());
    }

    #[test]
    fn all_cancel_run_still_accounts_for_every_task() {
        // Every task carries an already-tight deadline; whatever mix of
        // grants and timeouts results, nothing may leak.
        let config = AsyncBenchConfig {
            tasks: 1_000,
            workers: 2,
            cancel_pct: 100,
            deadline_ms: 1,
            ..AsyncBenchConfig::quick()
        };
        let r = run_async_bench(&config);
        assert!(r.clean_exit(), "leaked exit state: {r:?}");
    }
}
