//! The evaluation harness reproducing §5 of *Scalable Reader-Writer
//! Locks* (SPAA 2009).
//!
//! The paper's methodology (§5.1): every thread repeatedly acquires and
//! releases the lock in a tight loop with an empty critical section,
//! choosing read vs. write with a per-thread PRNG at a target read
//! percentage; throughput is total acquisitions over the time for all
//! threads to finish, averaged over three runs. [`runner`] implements
//! exactly that loop, [`sweep`] runs it over thread-count grids to
//! regenerate each panel of Figure 5, and [`report`] prints the series.
//!
//! The `fig5` binary drives it all:
//!
//! ```sh
//! cargo run -p oll-workloads --release --bin fig5 -- --panel a
//! cargo run -p oll-workloads --release --bin fig5 -- --panel all --csv fig5.csv
//! ```

#![warn(missing_docs)]

#[cfg(feature = "async")]
pub mod async_bench;
#[cfg(feature = "async")]
pub mod async_exec;
pub mod config;
pub mod json;
pub mod latency;
pub mod obsio;
pub mod report;
pub mod runner;
pub mod sweep;
pub mod traceio;

#[cfg(feature = "async")]
pub use async_bench::{run_async_bench, AsyncBenchConfig, AsyncBenchResult};
pub use config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
pub use latency::{
    run_latency, run_latency_profiled, LatencyHistogram, LatencyResult, LatencySummary,
};
pub use runner::{
    run_throughput, run_throughput_profiled, run_throughput_profiled_with, ThroughputResult,
};
pub use sweep::{run_panel, PanelResult, Series, SweepOptions};
