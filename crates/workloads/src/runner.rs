//! The throughput runner: the paper's tight acquire/release loop (§5.1).

use crate::config::{LockKind, LockOptions, WorkloadConfig};
use oll_baselines::{
    CentralizedRwLock, KsuhLock, McsMutex, McsRwLock, McsRwReaderPref, McsRwWriterPref,
    PerThreadRwLock, SolarisLikeRwLock, StdRwLock,
};
use oll_core::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SelfTuning};
use oll_csnzi::TreeShape;
use oll_hazard::PoisonPolicy;
use oll_telemetry::LockSnapshot;
use oll_util::XorShift64;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// The outcome of one throughput measurement (averaged over
/// `config.runs` repetitions).
#[derive(Debug, Clone, Copy)]
pub struct ThroughputResult {
    /// The lock measured.
    pub kind: LockKind,
    /// Thread count used.
    pub threads: usize,
    /// Read percentage used.
    pub read_pct: u32,
    /// Mean acquisitions per second over all runs.
    pub acquires_per_sec: f64,
    /// Mean wall time of a run.
    pub elapsed: Duration,
    /// Total acquisitions in one run.
    pub total_acquisitions: usize,
}

#[inline]
fn dummy_work(iters: u32) {
    for _ in 0..iters {
        std::hint::spin_loop();
    }
}

/// Measures one run: barrier-synchronized start, join-synchronized stop.
/// The snapshot is the lock's full telemetry for the run (`None` unless
/// built with the `telemetry` feature).
fn measure<L, F>(
    make_lock: F,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (Duration, Option<LockSnapshot>)
where
    L: RwLockFamily,
    F: Fn(usize) -> L,
{
    // Thread spawn/registration cost happens before the barrier. Each
    // worker records its own start (at barrier release) and end (after its
    // last release); the run's elapsed time is max(end) - min(start),
    // i.e. "the amount of time needed for all threads to complete" their
    // acquisitions. Workers must self-timestamp: on an oversubscribed
    // machine a coordinator thread may not be scheduled again until the
    // workers are already done.
    let lock = make_lock(config.threads);
    if opts.hazard {
        let h = lock.hazard();
        h.set_poison_policy(PoisonPolicy::Poison);
        h.detect_deadlocks(true);
    }
    let barrier = Barrier::new(config.threads);
    let state = AtomicI64::new(0);

    let spans: std::sync::Mutex<Vec<(Instant, Instant)>> =
        std::sync::Mutex::new(Vec::with_capacity(config.threads));
    std::thread::scope(|scope| {
        for tid in 0..config.threads {
            let lock = &lock;
            let barrier = &barrier;
            let state = &state;
            let spans = &spans;
            scope.spawn(move || {
                let mut handle = lock.handle().expect("capacity sized to thread count");
                let mut rng = XorShift64::for_thread(config.seed, tid);
                barrier.wait();
                let start = Instant::now();
                for _ in 0..config.acquisitions_per_thread {
                    if rng.percent(config.read_pct) {
                        handle.lock_read();
                        if config.verify {
                            let s = state.fetch_add(1, Ordering::SeqCst);
                            assert!(s >= 0, "reader entered while a writer was inside");
                        }
                        dummy_work(config.critical_work);
                        if config.verify {
                            state.fetch_sub(1, Ordering::SeqCst);
                        }
                        handle.unlock_read();
                    } else {
                        handle.lock_write();
                        if config.verify {
                            let s = state.swap(-1, Ordering::SeqCst);
                            assert_eq!(s, 0, "writer entered while the lock was held");
                        }
                        dummy_work(config.critical_work);
                        if config.verify {
                            state.store(0, Ordering::SeqCst);
                        }
                        handle.unlock_write();
                    }
                    dummy_work(config.outside_work);
                }
                let end = Instant::now();
                spans.lock().unwrap().push((start, end));
            });
        }
    });
    let spans = spans.into_inner().unwrap();
    let first_start = spans.iter().map(|s| s.0).min().expect("threads ran");
    let last_end = spans.iter().map(|s| s.1).max().expect("threads ran");
    let snap = lock.telemetry().snapshot();
    (last_end.duration_since(first_start), snap)
}

/// Routes an OLL lock construction through the `self_tuning` option:
/// when set, the lock runs under the [`SelfTuning`] online policy
/// controller for the whole measurement (the wrapper's try-then-block
/// handle preserves the inner fast path, so an untuned comparison is
/// apples-to-apples). Baselines never come through here — they have no
/// knobs to steer.
fn measure_tuned<L, F>(
    make_lock: F,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (Duration, Option<LockSnapshot>)
where
    L: RwLockFamily,
    F: Fn(usize) -> L,
{
    if opts.self_tuning {
        measure(|cap| SelfTuning::new(make_lock(cap)), config, opts)
    } else {
        measure(make_lock, config, opts)
    }
}

/// Runs `config` against lock `kind`, averaging `config.runs` repetitions.
pub fn run_throughput(kind: LockKind, config: &WorkloadConfig) -> ThroughputResult {
    run_throughput_profiled(kind, config).0
}

/// Like [`run_throughput`], additionally returning the lock's telemetry
/// profile accumulated over all runs. The profile is `None` unless the
/// workspace was built with the `telemetry` feature (the instrumented
/// locks record; uninstrumented baselines return an empty-handed
/// snapshot of nothing and also yield `None`).
pub fn run_throughput_profiled(
    kind: LockKind,
    config: &WorkloadConfig,
) -> (ThroughputResult, Option<LockSnapshot>) {
    run_throughput_profiled_with(kind, config, &LockOptions::default())
}

/// Like [`run_throughput_profiled`], applying `opts` when constructing
/// the OLL locks (adaptive C-SNZIs, explicit tree shapes, BRAVO reader
/// biasing). Baseline locks have nothing to configure and ignore `opts`.
pub fn run_throughput_profiled_with(
    kind: LockKind,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (ThroughputResult, Option<LockSnapshot>) {
    let shape = opts.shape_threads.map(TreeShape::for_threads);
    let mut total = Duration::ZERO;
    let mut profile: Option<LockSnapshot> = None;
    let runs = config.runs.max(1);
    for _ in 0..runs {
        let (elapsed, snap) = match kind {
            LockKind::Goll if opts.biased => measure_tuned(
                |cap| {
                    let mut b = GollLock::builder(cap).adaptive(opts.adaptive);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.biased(true).build_biased()
                },
                config,
                opts,
            ),
            LockKind::Goll => measure_tuned(
                |cap| {
                    let mut b = GollLock::builder(cap).adaptive(opts.adaptive);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.build()
                },
                config,
                opts,
            ),
            LockKind::Foll if opts.biased => measure_tuned(
                |cap| {
                    let mut b = FollLock::builder(cap)
                        .adaptive(opts.adaptive)
                        .cohort(opts.cohort);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.biased(true).build_biased()
                },
                config,
                opts,
            ),
            LockKind::Foll => measure_tuned(
                |cap| {
                    let mut b = FollLock::builder(cap)
                        .adaptive(opts.adaptive)
                        .cohort(opts.cohort);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.build()
                },
                config,
                opts,
            ),
            LockKind::Roll if opts.biased => measure_tuned(
                |cap| {
                    let mut b = RollLock::builder(cap)
                        .adaptive(opts.adaptive)
                        .cohort(opts.cohort);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.biased(true).build_biased()
                },
                config,
                opts,
            ),
            LockKind::Roll => measure_tuned(
                |cap| {
                    let mut b = RollLock::builder(cap)
                        .adaptive(opts.adaptive)
                        .cohort(opts.cohort);
                    if let Some(s) = shape {
                        b = b.tree_shape(s);
                    }
                    b.build()
                },
                config,
                opts,
            ),
            LockKind::Ksuh => measure(KsuhLock::new, config, opts),
            LockKind::SolarisLike => measure(SolarisLikeRwLock::new, config, opts),
            LockKind::Centralized => measure(CentralizedRwLock::new, config, opts),
            LockKind::McsRw => measure(McsRwLock::new, config, opts),
            LockKind::McsRwReaderPref => measure(McsRwReaderPref::new, config, opts),
            LockKind::McsRwWriterPref => measure(McsRwWriterPref::new, config, opts),
            LockKind::PerThread => measure(PerThreadRwLock::new, config, opts),
            LockKind::StdRw => measure(StdRwLock::new, config, opts),
            LockKind::McsMutex => measure(McsMutex::new, config, opts),
        };
        total += elapsed;
        match (&mut profile, snap) {
            (Some(p), Some(s)) => p.merge(&s),
            (p @ None, Some(s)) => *p = Some(s),
            _ => {}
        }
    }
    if let Some(p) = &mut profile {
        // Each run registered a fresh lock under an auto-sequenced name;
        // label the aggregate by what was measured instead.
        p.name = format!("{} t={}", kind.name(), config.threads);
    }
    let mean = total / runs as u32;
    let total_acqs = config.total_acquisitions();
    (
        ThroughputResult {
            kind,
            threads: config.threads,
            read_pct: config.read_pct,
            acquires_per_sec: total_acqs as f64 / mean.as_secs_f64(),
            elapsed: mean,
            total_acquisitions: total_acqs,
        },
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(read_pct: u32) -> WorkloadConfig {
        WorkloadConfig {
            threads: 3,
            read_pct,
            acquisitions_per_thread: 300,
            critical_work: 0,
            outside_work: 0,
            seed: 42,
            runs: 1,
            verify: true,
        }
    }

    #[test]
    fn every_lock_survives_verified_mixed_workload() {
        for kind in LockKind::ALL {
            let r = run_throughput(kind, &tiny(70));
            assert!(
                r.acquires_per_sec > 0.0,
                "{}: nonpositive throughput",
                kind.name()
            );
            assert_eq!(r.total_acquisitions, 900);
        }
    }

    #[test]
    fn read_only_and_write_only_extremes() {
        for kind in LockKind::FIGURE5 {
            run_throughput(kind, &tiny(100));
            run_throughput(kind, &tiny(0));
        }
    }

    #[test]
    fn adaptive_options_produce_working_oll_locks() {
        let opts = LockOptions {
            adaptive: true,
            shape_threads: Some(2),
            ..LockOptions::default()
        };
        for kind in [LockKind::Goll, LockKind::Foll, LockKind::Roll] {
            let (r, _) = run_throughput_profiled_with(kind, &tiny(90), &opts);
            assert!(
                r.acquires_per_sec > 0.0,
                "{}: nonpositive adaptive throughput",
                kind.name()
            );
        }
    }

    #[test]
    fn biased_options_produce_working_oll_locks() {
        let opts = LockOptions {
            biased: true,
            ..LockOptions::default()
        };
        for kind in [LockKind::Goll, LockKind::Foll, LockKind::Roll] {
            let (r, _) = run_throughput_profiled_with(kind, &tiny(90), &opts);
            assert!(
                r.acquires_per_sec > 0.0,
                "{}: nonpositive biased throughput",
                kind.name()
            );
        }
    }

    #[test]
    fn cohort_options_produce_working_oll_locks() {
        let opts = LockOptions {
            cohort: true,
            ..LockOptions::default()
        };
        // Write-heavy mixes exercise the cohort writer gate; GOLL has no
        // cohort path and must ignore the flag.
        for kind in [LockKind::Goll, LockKind::Foll, LockKind::Roll] {
            let (r, _) = run_throughput_profiled_with(kind, &tiny(10), &opts);
            assert!(
                r.acquires_per_sec > 0.0,
                "{}: nonpositive cohort throughput",
                kind.name()
            );
        }
    }

    #[test]
    fn single_thread_runs() {
        let config = WorkloadConfig {
            threads: 1,
            ..tiny(50)
        };
        let r = run_throughput(LockKind::Foll, &config);
        assert_eq!(r.threads, 1);
    }
}
