//! `--obs` plumbing shared by the workload binaries.
//!
//! `fig5`, `latency`, `fig5_async`, and `examples/lockstat.rs` all
//! offer the same monitoring flags: `--obs [ADDR]` starts the
//! [`oll_obs::Sampler`] daemon for the duration of the run (and, when
//! ADDR is given, serves `/metrics`, `/json`, and `/health` from it),
//! `--obs-json PATH` writes the final `oll.obs` document, and
//! `--obs-interval-ms N` tunes the tick. [`parse_flag`] handles the
//! shared argv cases, [`start`] spins the session up, and [`finish`]
//! tears it down and returns the end-of-run text summary.

use oll_obs::{HealthConfig, ObsServer, Sampler, SamplerConfig};
use std::io::Write as _;
use std::time::Duration;

/// The shared `--obs*` argument set.
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    /// Monitoring requested (`--obs` or `--obs-json` seen).
    pub on: bool,
    /// Exposition listen address, if `--obs` carried one.
    pub addr: Option<String>,
    /// Where to write the final `oll.obs` document.
    pub json: Option<String>,
    /// Sampling interval override, milliseconds.
    pub interval_ms: Option<u64>,
}

impl ObsArgs {
    /// The sampler configuration these arguments describe.
    pub fn config(&self) -> SamplerConfig {
        let mut cfg = SamplerConfig::default();
        if let Some(ms) = self.interval_ms {
            cfg.interval = Duration::from_millis(ms.max(1));
        }
        cfg
    }
}

/// Consumes one `--obs*` flag at `argv[*i]` if it is one, advancing
/// `*i` past any value it takes. Returns `false` (untouched) for other
/// flags. `bad` is called with a diagnostic on a malformed value.
pub fn parse_flag(
    argv: &[String],
    i: &mut usize,
    args: &mut ObsArgs,
    bad: &mut dyn FnMut(&str),
) -> bool {
    match argv[*i].as_str() {
        "--obs" => {
            args.on = true;
            // The address is optional: `--obs 127.0.0.1:9184` listens,
            // bare `--obs` only samples. A following flag is not an
            // address.
            if let Some(next) = argv.get(*i + 1) {
                if !next.starts_with('-') {
                    args.addr = Some(next.clone());
                    *i += 1;
                }
            }
            true
        }
        "--obs-json" => {
            match argv.get(*i + 1) {
                Some(path) => {
                    args.on = true;
                    args.json = Some(path.clone());
                    *i += 1;
                }
                None => bad("missing value for --obs-json"),
            }
            true
        }
        "--obs-interval-ms" => {
            match argv.get(*i + 1).and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) if ms > 0 => {
                    args.interval_ms = Some(ms);
                    *i += 1;
                }
                _ => bad("bad --obs-interval-ms"),
            }
            true
        }
        _ => false,
    }
}

/// Warns when an `--obs` flag can record nothing in this build.
pub fn warn_if_disabled(bin: &str) {
    if !oll_obs::enabled() {
        eprintln!(
            "warning: this binary was built without the `obs` feature; the \
             sampler is compiled out and the monitoring report will be empty. \
             Rebuild with:\n  \
             cargo run -p oll-workloads --release --features obs --bin {bin} -- --obs"
        );
    }
}

/// A running monitoring session: the sampler daemon plus the optional
/// exposition listener.
#[derive(Debug)]
pub struct ObsSession {
    sampler: Sampler,
    server: Option<ObsServer>,
}

impl ObsSession {
    /// The exposition listener's bound address, if one is serving.
    pub fn local_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().and_then(ObsServer::local_addr)
    }
}

/// Starts the sampler (and listener, when an address was given).
/// Returns `None` when the arguments did not ask for monitoring; exits
/// via `fail` when a requested listener cannot bind.
pub fn start(args: &ObsArgs, fail: &mut dyn FnMut(&str)) -> Option<ObsSession> {
    if !args.on {
        return None;
    }
    let sampler = Sampler::start(args.config());
    let server = match &args.addr {
        Some(addr) => match sampler.serve(addr) {
            Ok(server) => {
                if let Some(bound) = server.local_addr() {
                    eprintln!("obs: serving /metrics /json /health on http://{bound}/");
                }
                Some(server)
            }
            Err(e) if e.kind() == std::io::ErrorKind::Unsupported => None,
            Err(e) => {
                fail(&format!("cannot serve obs endpoint on {addr}: {e}"));
                None
            }
        },
        None => None,
    };
    Some(ObsSession { sampler, server })
}

/// Stops the session, writes the `oll.obs` document if requested, and
/// returns the end-of-run text summary for printing.
pub fn finish(session: ObsSession, json_path: Option<&str>) -> std::io::Result<String> {
    if let Some(server) = session.server {
        server.shutdown();
    }
    let state = session.sampler.stop();
    let health = oll_obs::health::score_all(&state, &HealthConfig::default());
    if let Some(path) = json_path {
        let mut f = std::fs::File::create(path)?;
        f.write_all(oll_obs::report::render_obs_json(&state, &health).as_bytes())?;
        f.write_all(b"\n")?;
        eprintln!("wrote {path}");
    }
    Ok(oll_obs::report::render_obs_text(&state, &health))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn obs_address_is_optional() {
        let mut args = ObsArgs::default();
        let mut bad = |m: &str| panic!("{m}");
        let v = argv(&["--obs", "--quiet"]);
        let mut i = 0;
        assert!(parse_flag(&v, &mut i, &mut args, &mut bad));
        assert_eq!(i, 0, "a following flag is not an address");
        assert!(args.on);
        assert!(args.addr.is_none());

        let v = argv(&["--obs", "127.0.0.1:9184"]);
        let mut i = 0;
        assert!(parse_flag(&v, &mut i, &mut args, &mut bad));
        assert_eq!(i, 1);
        assert_eq!(args.addr.as_deref(), Some("127.0.0.1:9184"));
    }

    #[test]
    fn json_and_interval_take_values() {
        let mut args = ObsArgs::default();
        let mut bad = |m: &str| panic!("{m}");
        let v = argv(&["--obs-json", "out.json", "--obs-interval-ms", "50"]);
        let mut i = 0;
        assert!(parse_flag(&v, &mut i, &mut args, &mut bad));
        i += 1;
        assert!(parse_flag(&v, &mut i, &mut args, &mut bad));
        assert!(args.on);
        assert_eq!(args.json.as_deref(), Some("out.json"));
        assert_eq!(args.interval_ms, Some(50));
        assert_eq!(args.config().interval, Duration::from_millis(50));
    }

    #[test]
    fn bad_interval_reports() {
        let mut args = ObsArgs::default();
        let mut saw = None;
        let v = argv(&["--obs-interval-ms", "zero"]);
        let mut i = 0;
        parse_flag(&v, &mut i, &mut args, &mut |m| saw = Some(m.to_string()));
        assert_eq!(saw.as_deref(), Some("bad --obs-interval-ms"));
    }

    #[test]
    fn other_flags_pass_through() {
        let mut args = ObsArgs::default();
        let v = argv(&["--json", "x"]);
        let mut i = 0;
        assert!(!parse_flag(&v, &mut i, &mut args, &mut |_| {}));
        assert!(!args.on);
    }

    #[test]
    fn off_session_is_none() {
        assert!(start(&ObsArgs::default(), &mut |m| panic!("{m}")).is_none());
    }
}
