//! A minimal bounded-pool executor for the async harness.
//!
//! The point of the async lock family is that *waiters are tasks, not
//! threads*: a handful of OS threads can carry millions of concurrently
//! queued acquisitions. This executor exists to demonstrate exactly
//! that — `fig5_async` drives ≥1M lock-user tasks over
//! [`oll_async::AsyncRwLock`] on ≤8 workers — so it is deliberately
//! tiny: one shared injector queue, one `std::task::Wake` waker per
//! task, no work stealing, no timers (the lock's deadline futures bring
//! their own).
//!
//! Each task owns a five-state word (`IDLE` / `SCHEDULED` / `RUNNING` /
//! `NOTIFIED` / `DONE`) that arbitrates the wake-during-poll race: a
//! grant arriving while a worker is mid-poll CASes `RUNNING → NOTIFIED`,
//! and the worker re-enqueues after the poll returns `Pending`. A task
//! is never in the injector while `RUNNING`, so exactly one worker polls
//! it at a time and the future needs no synchronization of its own.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::JoinHandle;

/// Not queued, not running; a wake schedules it.
const IDLE: u8 = 0;
/// In the injector, waiting for a worker.
const SCHEDULED: u8 = 1;
/// A worker is polling it right now.
const RUNNING: u8 = 2;
/// Woken mid-poll; the polling worker re-enqueues on `Pending`.
const NOTIFIED: u8 = 3;
/// The future returned `Ready`; all further wakes are no-ops.
const DONE: u8 = 4;

type TaskFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

struct Task {
    /// The future, parked here between polls. `None` only transiently
    /// (while a worker holds it on its stack) or after `DONE`.
    future: Mutex<Option<TaskFuture>>,
    state: AtomicU8,
    shared: Arc<Shared>,
}

impl Task {
    /// Schedules the task in response to a wake, honoring the state
    /// machine above. Safe to call from any thread at any time.
    fn schedule(self: Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let shared = Arc::clone(&self.shared);
                        shared.push(self);
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already flagged, or finished.
                _ => return,
            }
        }
    }
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        Arc::clone(self).schedule();
    }
}

struct Injector {
    tasks: VecDeque<Arc<Task>>,
    shutdown: bool,
}

struct Shared {
    injector: Mutex<Injector>,
    /// Workers sleep here when the injector is empty.
    work: Condvar,
    /// `wait_idle` sleeps here; signalled when `pending` hits zero.
    idle: Condvar,
    /// Spawned-but-not-finished task count. Guarded by `injector`'s
    /// mutex for the idle handshake (decrement-and-signal vs.
    /// check-and-wait), loaded relaxed elsewhere.
    pending: AtomicUsize,
}

impl Shared {
    fn push(&self, task: Arc<Task>) {
        let mut inj = self.injector.lock().unwrap();
        inj.tasks.push_back(task);
        drop(inj);
        self.work.notify_one();
    }

    /// One task returned `Ready`.
    fn complete_one(&self) {
        // Take the mutex so the decrement cannot slip between
        // `wait_idle`'s check and its wait.
        let inj = self.injector.lock().unwrap();
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            drop(inj);
            self.idle.notify_all();
        }
    }
}

/// A fixed pool of worker threads polling spawned futures to
/// completion. Dropping the executor shuts the pool down (after the
/// injector drains of *scheduled* tasks; call [`Executor::wait_idle`]
/// first if every spawned task must finish).
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Executor {
    /// Starts a pool of `workers` OS threads (at least one).
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            injector: Mutex::new(Injector {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            pending: AtomicUsize::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("oll-async-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Spawns a future onto the pool.
    pub fn spawn<F>(&self, future: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        self.shared.pending.fetch_add(1, Ordering::AcqRel);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(future))),
            state: AtomicU8::new(SCHEDULED),
            shared: Arc::clone(&self.shared),
        });
        self.shared.push(task);
    }

    /// Blocks until every spawned task has completed.
    pub fn wait_idle(&self) {
        let mut inj = self.shared.injector.lock().unwrap();
        while self.shared.pending.load(Ordering::Acquire) > 0 {
            inj = self.shared.idle.wait(inj).unwrap();
        }
    }

    /// Spawned-but-unfinished task count (racy; exact only at idle).
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Acquire)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut inj = self.shared.injector.lock().unwrap();
            inj.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let task = {
            let mut inj = shared.injector.lock().unwrap();
            loop {
                if let Some(t) = inj.tasks.pop_front() {
                    break t;
                }
                if inj.shutdown {
                    return;
                }
                inj = shared.work.wait(inj).unwrap();
            }
        };

        task.state.store(RUNNING, Ordering::Release);
        let Some(mut future) = task.future.lock().unwrap().take() else {
            // Defensive: a task is only queued with its future parked.
            continue;
        };
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        match future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                task.state.store(DONE, Ordering::Release);
                drop(future);
                shared.complete_one();
            }
            Poll::Pending => {
                // Park the future *before* leaving RUNNING: the task is
                // not in the injector, so no other worker can race for
                // the slot.
                *task.future.lock().unwrap() = Some(future);
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // Woken mid-poll (NOTIFIED): run it again.
                    task.state.store(SCHEDULED, Ordering::Release);
                    shared.push(Arc::clone(&task));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Returns `Pending` once (waking itself), then `Ready`.
    struct YieldOnce(bool);

    impl Future for YieldOnce {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }

    #[test]
    fn runs_many_tasks_to_completion() {
        let exec = Executor::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..10_000 {
            let hits = Arc::clone(&hits);
            exec.spawn(async move {
                YieldOnce(false).await;
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 10_000);
        assert_eq!(exec.pending(), 0);
    }

    #[test]
    fn cross_thread_wake_reschedules() {
        // A future that parks until an external thread flips its flag
        // and wakes it — exercises IDLE → SCHEDULED from outside the
        // pool.
        struct WaitForFlag {
            flag: Arc<AtomicU8>,
            waker: Arc<Mutex<Option<Waker>>>,
        }
        impl Future for WaitForFlag {
            type Output = ();
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
                if self.flag.load(Ordering::Acquire) == 1 {
                    return Poll::Ready(());
                }
                *self.waker.lock().unwrap() = Some(cx.waker().clone());
                // Re-check after registering (the standard lost-wakeup
                // closure).
                if self.flag.load(Ordering::Acquire) == 1 {
                    return Poll::Ready(());
                }
                Poll::Pending
            }
        }

        let exec = Executor::new(2);
        let flag = Arc::new(AtomicU8::new(0));
        let waker: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let done = Arc::new(AtomicU64::new(0));
        {
            let (flag, waker, done) = (Arc::clone(&flag), Arc::clone(&waker), Arc::clone(&done));
            exec.spawn(async move {
                WaitForFlag { flag, waker }.await;
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait for the task to park, then wake it from this thread.
        loop {
            if waker.lock().unwrap().is_some() {
                break;
            }
            std::thread::yield_now();
        }
        flag.store(1, Ordering::Release);
        waker.lock().unwrap().take().unwrap().wake();
        exec.wait_idle();
        assert_eq!(done.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn single_worker_pool_still_drains() {
        let exec = Executor::new(1);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..100 {
            let hits = Arc::clone(&hits);
            exec.spawn(async move {
                YieldOnce(false).await;
                YieldOnce(false).await;
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.wait_idle();
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }
}
