//! Output formatting: aligned text tables (the rows behind each Figure 5
//! panel) and CSV for external plotting.

use crate::config::LockKind;
use crate::sweep::PanelResult;
use std::fmt::Write as _;

/// Renders a panel as an aligned text table, one row per thread count and
/// one column per lock — the same series the paper plots.
pub fn render_table(panel: &PanelResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", panel.panel.caption());
    let _ = writeln!(out, "(throughput in acquires/s; higher is better)");
    let _ = write!(out, "{:>8}", "threads");
    for s in &panel.series {
        let _ = write!(out, " {:>14}", s.kind.name());
    }
    let _ = writeln!(out);
    for (i, &t) in panel.thread_counts.iter().enumerate() {
        let _ = write!(out, "{t:>8}");
        for s in &panel.series {
            let _ = write!(out, " {:>14.0}", s.points[i].acquires_per_sec);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders a panel as CSV: `panel,read_pct,lock,threads,acquires_per_sec`.
pub fn render_csv(panel: &PanelResult, include_header: bool) -> String {
    let mut out = String::new();
    if include_header {
        out.push_str("panel,read_pct,lock,threads,acquires_per_sec,elapsed_secs\n");
    }
    let tag = panel.panel.tag();
    for s in &panel.series {
        for p in &s.points {
            let _ = writeln!(
                out,
                "{tag},{},{},{},{:.1},{:.6}",
                p.read_pct,
                s.kind.name().replace(' ', "-"),
                p.threads,
                p.acquires_per_sec,
                p.elapsed.as_secs_f64(),
            );
        }
    }
    out
}

/// A qualitative comparison of two locks at the largest thread count —
/// used by EXPERIMENTS.md to state "who wins, by what factor".
pub fn factor_at_peak(panel: &PanelResult, a: LockKind, b: LockKind) -> Option<f64> {
    let fa = panel.peak_threads_throughput(a)?;
    let fb = panel.peak_threads_throughput(b)?;
    if fb > 0.0 {
        Some(fa / fb)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Fig5Panel, LockOptions, WorkloadConfig};
    use crate::sweep::{run_panel, SweepOptions};

    fn tiny_panel() -> PanelResult {
        run_panel(
            Fig5Panel::B,
            &SweepOptions {
                thread_counts: vec![1, 2],
                locks: vec![LockKind::Foll, LockKind::SolarisLike],
                base: WorkloadConfig {
                    threads: 1,
                    read_pct: 99,
                    acquisitions_per_thread: 150,
                    critical_work: 0,
                    outside_work: 0,
                    seed: 3,
                    runs: 1,
                    verify: false,
                },
                progress: false,
                collect_telemetry: false,
                lock_options: LockOptions::default(),
            },
        )
    }

    #[test]
    fn table_contains_caption_locks_and_rows() {
        let p = tiny_panel();
        let t = render_table(&p);
        assert!(t.contains("Figure 5(b)"));
        assert!(t.contains("FOLL"));
        assert!(t.contains("Solaris Like"));
        // one header + one units line + two data rows
        assert_eq!(t.lines().count(), 5);
    }

    #[test]
    fn csv_has_header_and_all_points() {
        let p = tiny_panel();
        let csv = render_csv(&p, true);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 1 + 2 * 2);
        assert!(lines[0].starts_with("panel,"));
        assert!(lines[1].starts_with("b,99,FOLL,1,"));
    }

    #[test]
    fn factor_is_finite_and_positive() {
        let p = tiny_panel();
        let f = factor_at_peak(&p, LockKind::Foll, LockKind::SolarisLike).unwrap();
        assert!(f.is_finite() && f > 0.0);
    }
}
