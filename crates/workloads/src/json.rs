//! Schema-versioned JSON reports for the workload binaries.
//!
//! Hand-rolled like `oll_telemetry::report` (the workspace carries no
//! serialization dependency). Two document schemas:
//!
//! - `oll.fig5` — the panels of a `fig5` run: every (lock × threads)
//!   point with throughput and, when collected, the lock's telemetry
//!   profile.
//! - `oll.latency` — a `latency` run: per-lock acquisition-latency
//!   percentiles, plus telemetry profiles when collected.
//! - `oll.trace` — a flight-recorder capture (`--trace` on either
//!   binary): the merged record timeline plus the analyzer's findings.
//!   Causality tokens are 64-bit and travel as `"0x…"` hex strings —
//!   JSON numbers are f64 and would corrupt them.
//!
//! Consumers should check `"schema"` and `"version"` before parsing;
//! [`oll_telemetry::report::SCHEMA_VERSION`] is bumped on any
//! backwards-incompatible change across all OLL JSON documents. The
//! [`parse`] submodule carries a small JSON reader used to round-trip
//! test every document this module emits.

use crate::latency::{LatencyResult, LatencySummary};
use crate::sweep::PanelResult;
use oll_telemetry::report::{json_escape, render_lock_json, SCHEMA_VERSION};
use oll_telemetry::LockSnapshot;
use oll_trace::{Timeline, TraceReport};
use std::fmt::Write as _;

fn json_telemetry(profile: &Option<LockSnapshot>) -> String {
    match profile {
        Some(s) => render_lock_json(s),
        None => "null".to_string(),
    }
}

/// Renders a set of regenerated Figure 5 panels as one `oll.fig5`
/// document.
pub fn render_fig5_json(panels: &[PanelResult]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.fig5\",\"version\":{SCHEMA_VERSION},\"panels\":["
    );
    for (pi, panel) in panels.iter().enumerate() {
        if pi > 0 {
            out.push(',');
        }
        let shape = match panel.options.shape_threads {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "{{\"panel\":\"{}\",\"read_pct\":{},\"adaptive\":{},\"biased\":{},\"hazard\":{},\"cohort\":{},\"self_tuning\":{},\"shape_threads\":{},\"thread_counts\":{:?},\"series\":[",
            panel.panel.tag(),
            panel.panel.read_pct(),
            panel.options.adaptive,
            panel.options.biased,
            panel.options.hazard,
            panel.options.cohort,
            panel.options.self_tuning,
            shape,
            panel.thread_counts,
        );
        for (si, s) in panel.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lock\":\"{}\",\"points\":[",
                json_escape(s.kind.name())
            );
            for (i, p) in s.points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let profile = s.profiles.get(i).cloned().flatten();
                let _ = write!(
                    out,
                    "{{\"threads\":{},\"acquires_per_sec\":{:.1},\"elapsed_secs\":{:.6},\"total_acquisitions\":{},\"telemetry\":{}}}",
                    p.threads,
                    p.acquires_per_sec,
                    p.elapsed.as_secs_f64(),
                    p.total_acquisitions,
                    json_telemetry(&profile),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn json_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        s.count, s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns
    )
}

/// Renders a latency run as one `oll.latency` document. `profiles` must
/// be parallel to `results` (pass an all-`None` slice when telemetry was
/// not collected).
pub fn render_latency_json(
    threads: usize,
    read_pct: u32,
    acquisitions_per_thread: usize,
    results: &[LatencyResult],
    profiles: &[Option<LockSnapshot>],
) -> String {
    debug_assert_eq!(results.len(), profiles.len());
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.latency\",\"version\":{SCHEMA_VERSION},\"threads\":{threads},\"read_pct\":{read_pct},\"acquisitions_per_thread\":{acquisitions_per_thread},\"locks\":["
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let profile = profiles.get(i).cloned().flatten();
        let _ = write!(
            out,
            "{{\"lock\":\"{}\",\"read\":{},\"write\":{},\"telemetry\":{}}}",
            json_escape(r.kind.name()),
            json_summary(&r.read),
            json_summary(&r.write),
            json_telemetry(&profile),
        );
    }
    out.push_str("]}");
    out
}

fn json_u32s(v: &[u32]) -> String {
    let mut out = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{x}");
    }
    out.push(']');
    out
}

/// Renders a flight-recorder capture and its analysis as one `oll.trace`
/// document. Timestamps are nanoseconds since the recorder's epoch (safe
/// as JSON numbers: f64 holds them exactly for ~104 days of uptime);
/// causality tokens are raw 64-bit values and travel as hex strings.
pub fn render_trace_json(tl: &Timeline, report: &TraceReport) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.trace\",\"version\":{SCHEMA_VERSION},\"records\":{},\"dropped\":{},\"truncated\":{},\"locks\":[",
        tl.records.len(),
        tl.dropped,
        tl.truncated(),
    );
    for (i, l) in tl.locks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":{},\"kind\":\"{}\",\"name\":\"{}\"}}",
            l.id,
            json_escape(&l.kind),
            json_escape(&l.name),
        );
    }
    out.push_str("],\"threads\":[");
    for (i, t) in tl.threads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tid\":{},\"name\":\"{}\"}}",
            t.tid,
            json_escape(&t.name)
        );
    }
    // Each event is a compact [ts_ns, tid, lock, "kind", "0x<token>"] row.
    out.push_str("],\"events\":[");
    for (i, r) in tl.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "[{},{},{},\"{}\",\"0x{:x}\"]",
            r.ts_ns,
            r.tid,
            r.lock,
            r.kind.name(),
            r.token,
        );
    }
    let _ = write!(
        out,
        "],\"analysis\":{{\"acquisitions\":{},\"handoff_edges\":{},\"unmatched_grants\":{},\"breakdown\":[",
        report.acquisitions.len(),
        report.edges.len(),
        report.unmatched_grants,
    );
    for (i, b) in report.breakdowns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lock\":{},\"acquisitions\":{},\"queued\":{},\"via_handoff\":{},\"spin_ns\":{},\"queued_ns\":{},\"handoff_ns\":{},\"max_total_ns\":{}}}",
            b.lock, b.acquisitions, b.queued, b.via_handoff, b.spin_ns, b.queued_ns, b.handoff_ns, b.max_total_ns,
        );
    }
    out.push_str("],\"cascades\":[");
    for (i, c) in report.cascades.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lock\":{},\"tids\":{},\"start_ns\":{},\"end_ns\":{}}}",
            c.lock,
            json_u32s(&c.tids),
            c.start_ns,
            c.end_ns,
        );
    }
    out.push_str("],\"convoys\":[");
    for (i, c) in report.convoys.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lock\":{},\"length\":{},\"start_ns\":{},\"end_ns\":{}}}",
            c.lock, c.length, c.start_ns, c.end_ns,
        );
    }
    out.push_str("],\"starvations\":[");
    for (i, s) in report.starvations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"lock\":{},\"tid\":{},\"queued_ns\":{},\"threshold_ns\":{}}}",
            s.lock, s.tid, s.queued_ns, s.threshold_ns,
        );
    }
    out.push_str("],\"wait_chains\":[");
    for (i, w) in report.wait_chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"tids\":{},\"locks\":{},\"ts_ns\":{}}}",
            json_u32s(&w.tids),
            json_u32s(&w.locks),
            w.ts_ns,
        );
    }
    out.push_str("]}}");
    out
}

/// Sets member `key` of the top-level object in `doc` to the JSON
/// document `member`, replacing any existing member of that name, and
/// returns the re-rendered document. This is how `fig5_async --merge`
/// folds its `oll.fig5_async` panel into the committed `BENCH_fig5.json`
/// trajectory file without disturbing the `oll.fig5` members around it.
pub fn merge_member(doc: &str, key: &str, member: &str) -> Result<String, parse::ParseError> {
    use parse::Value;
    let root = parse::parse(doc)?;
    let inserted = parse::parse(member)?;
    let Value::Obj(mut members) = root else {
        return Err(parse::ParseError {
            pos: 0,
            msg: "top-level value is not an object",
        });
    };
    match members.iter_mut().find(|(k, _)| k == key) {
        Some((_, v)) => *v = inserted,
        None => members.push((key.to_string(), inserted)),
    }
    Ok(Value::Obj(members).render())
}

/// A minimal JSON reader for the documents this module emits: round-trip
/// tests and the `--trace` CI smoke check parse with it. Full JSON
/// grammar; numbers come back as f64 (which is why 64-bit tokens travel
/// as hex strings in `oll.trace`).
pub mod parse {
    use std::fmt;

    /// A parsed JSON value. Objects keep their key order.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`.
        Null,
        /// `true` / `false`.
        Bool(bool),
        /// Any JSON number.
        Num(f64),
        /// A string, with escapes resolved.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object, as ordered key/value pairs.
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Serializes this value back to JSON text (compact, key order
        /// preserved). Numbers render via Rust's shortest-round-trip
        /// `f64` formatting, so a parse → render → parse cycle is
        /// lossless.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.render_into(&mut out);
            out
        }

        fn render_into(&self, out: &mut String) {
            use std::fmt::Write as _;
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(true) => out.push_str("true"),
                Value::Bool(false) => out.push_str("false"),
                Value::Num(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", oll_telemetry::report::json_escape(s));
                }
                Value::Arr(items) => {
                    out.push('[');
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        v.render_into(out);
                    }
                    out.push(']');
                }
                Value::Obj(members) => {
                    out.push('{');
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "\"{}\":", oll_telemetry::report::json_escape(k));
                        v.render_into(out);
                    }
                    out.push('}');
                }
            }
        }

        /// Object member lookup.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// Array element lookup.
        pub fn idx(&self, i: usize) -> Option<&Value> {
            match self {
                Value::Arr(items) => items.get(i),
                _ => None,
            }
        }

        /// The array items, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }

        /// The string contents, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The number, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::Num(n) => Some(*n),
                _ => None,
            }
        }

        /// The number as an exact non-negative integer, if it is one.
        pub fn as_u64(&self) -> Option<u64> {
            let n = self.as_f64()?;
            (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as u64)
        }

        /// The boolean, if this is one.
        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }
    }

    /// A syntax error, with the byte offset it was found at.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct ParseError {
        /// Byte offset into the input.
        pub pos: usize,
        /// What went wrong.
        pub msg: &'static str,
    }

    impl fmt::Display for ParseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
        }
    }

    impl std::error::Error for ParseError {}

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn err(&self, msg: &'static str) -> ParseError {
            ParseError { pos: self.pos, msg }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), ParseError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err("unexpected character"))
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(self.err("invalid literal"))
            }
        }

        fn value(&mut self) -> Result<Value, ParseError> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                _ => Err(self.err("expected a value")),
            }
        }

        fn object(&mut self) -> Result<Value, ParseError> {
            self.expect(b'{')?;
            let mut members = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(members));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                members.push((key, self.value()?));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(members));
                    }
                    _ => return Err(self.err("expected ',' or '}'")),
                }
            }
        }

        fn array(&mut self) -> Result<Value, ParseError> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(self.err("expected ',' or ']'")),
                }
            }
        }

        fn hex4(&mut self) -> Result<u16, ParseError> {
            let end = self.pos + 4;
            let digits = self
                .bytes
                .get(self.pos..end)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u16::from_str_radix(h, 16).ok())
                .ok_or_else(|| self.err("invalid \\u escape"))?;
            self.pos = end;
            Ok(digits)
        }

        fn string(&mut self) -> Result<String, ParseError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                    b'"' => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.pos += 1;
                        let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'u' => {
                                let hi = self.hex4()?;
                                let code = if (0xD800..0xDC00).contains(&hi) {
                                    // Surrogate pair: a second \uXXXX must follow.
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    self.pos += 1;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00)
                                } else {
                                    u32::from(hi)
                                };
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid \\u escape"))?,
                                );
                            }
                            _ => return Err(self.err("invalid escape")),
                        }
                    }
                    first => {
                        // Copy one UTF-8 scalar (the input is a &str, so
                        // the sequence is valid).
                        let len = match first {
                            0x00..=0x7F => 1,
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(self.pos..self.pos + len)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| self.err("unterminated string"))?;
                        out.push_str(chunk);
                        self.pos += len;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Value, ParseError> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.peek() == Some(b'.') {
                self.pos += 1;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            if matches!(self.peek(), Some(b'e' | b'E')) {
                self.pos += 1;
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .filter(|n| n.is_finite())
                .map(Value::Num)
                .ok_or_else(|| self.err("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::parse::Value;
    use super::*;
    use crate::config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
    use crate::latency::run_latency;
    use crate::sweep::{run_panel, SweepOptions};

    fn tiny_opts() -> SweepOptions {
        SweepOptions {
            thread_counts: vec![1, 2],
            locks: vec![LockKind::Foll],
            base: WorkloadConfig {
                threads: 1,
                read_pct: 99,
                acquisitions_per_thread: 100,
                critical_work: 0,
                outside_work: 0,
                seed: 3,
                runs: 1,
                verify: false,
            },
            progress: false,
            collect_telemetry: true,
            lock_options: LockOptions::default(),
        }
    }

    #[test]
    fn fig5_document_shape() {
        let panel = run_panel(Fig5Panel::B, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        assert!(doc.starts_with("{\"schema\":\"oll.fig5\",\"version\":1,"));
        assert!(doc.contains("\"panel\":\"b\""));
        assert!(doc.contains("\"read_pct\":99"));
        assert!(doc.contains("\"lock\":\"FOLL\""));
        assert!(doc.contains("\"threads\":1"));
        assert!(doc.contains("\"telemetry\":"));
        // Two points -> exactly two telemetry fields.
        assert_eq!(doc.matches("\"telemetry\":").count(), 2);
        // With the feature off, profiles must be null; with it on, FOLL
        // records and its profile must carry the acquisition counts.
        if oll_telemetry::Telemetry::enabled() {
            assert!(doc.contains("\"read_fast\""), "doc: {doc}");
        } else {
            assert!(doc.contains("\"telemetry\":null"));
        }
    }

    #[test]
    fn fig5_adaptive_options_round_trip() {
        let mut opts = tiny_opts();
        opts.lock_options = LockOptions {
            adaptive: true,
            shape_threads: Some(4),
            ..LockOptions::default()
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("adaptive fig5 doc must parse");
        let p = v.get("panels").and_then(|p| p.idx(0)).expect("one panel");
        assert_eq!(p.get("adaptive").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(false));
        assert_eq!(p.get("shape_threads").and_then(Value::as_u64), Some(4));

        // Default options serialize as non-adaptive with a null shape.
        let panel = run_panel(Fig5Panel::A, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).unwrap();
        let p = v.get("panels").and_then(|p| p.idx(0)).unwrap();
        assert_eq!(p.get("adaptive").and_then(Value::as_bool), Some(false));
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(false));
        assert_eq!(p.get("hazard").and_then(Value::as_bool), Some(false));
        assert_eq!(p.get("shape_threads"), Some(&Value::Null));
    }

    #[test]
    fn fig5_biased_options_round_trip() {
        let mut opts = tiny_opts();
        opts.lock_options = LockOptions {
            biased: true,
            ..LockOptions::default()
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("biased fig5 doc must parse");
        let p = v.get("panels").and_then(|p| p.idx(0)).expect("one panel");
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("adaptive").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn fig5_hazard_options_round_trip() {
        let mut opts = tiny_opts();
        opts.lock_options = LockOptions {
            hazard: true,
            ..LockOptions::default()
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("hazard fig5 doc must parse");
        let p = v.get("panels").and_then(|p| p.idx(0)).expect("one panel");
        assert_eq!(p.get("hazard").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn fig5_cohort_options_round_trip() {
        let mut opts = tiny_opts();
        opts.lock_options = LockOptions {
            cohort: true,
            ..LockOptions::default()
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("cohort fig5 doc must parse");
        let p = v.get("panels").and_then(|p| p.idx(0)).expect("one panel");
        assert_eq!(p.get("cohort").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(false));

        // Default options serialize with the gate off.
        let panel = run_panel(Fig5Panel::A, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).unwrap();
        let p = v.get("panels").and_then(|p| p.idx(0)).unwrap();
        assert_eq!(p.get("cohort").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn fig5_self_tuning_options_round_trip() {
        let mut opts = tiny_opts();
        opts.lock_options = LockOptions {
            self_tuning: true,
            biased: true,
            ..LockOptions::default()
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("self-tuning fig5 doc must parse");
        let p = v.get("panels").and_then(|p| p.idx(0)).expect("one panel");
        assert_eq!(p.get("self_tuning").and_then(Value::as_bool), Some(true));
        assert_eq!(p.get("biased").and_then(Value::as_bool), Some(true));

        // Default options serialize with the controller off.
        let panel = run_panel(Fig5Panel::A, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).unwrap();
        let p = v.get("panels").and_then(|p| p.idx(0)).unwrap();
        assert_eq!(p.get("self_tuning").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn parser_handles_escapes_numbers_and_nesting() {
        let v = parse::parse(r#"{"a":[1,-2.5,1e3],"s":"q\" \\ \n A 😀","t":true,"n":null,"o":{}}"#)
            .unwrap();
        assert_eq!(
            v.get("a").and_then(|a| a.idx(0)).and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.idx(1)).and_then(Value::as_f64),
            Some(-2.5)
        );
        assert_eq!(
            v.get("a").and_then(|a| a.idx(2)).and_then(Value::as_f64),
            Some(1000.0)
        );
        assert_eq!(v.get("s").and_then(Value::as_str), Some("q\" \\ \n A 😀"));
        assert_eq!(v.get("t").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("n"), Some(&Value::Null));
        assert_eq!(v.get("o"), Some(&Value::Obj(Vec::new())));
        assert!(parse::parse("{\"unterminated\":").is_err());
        assert!(parse::parse("[1,2,]").is_err());
        assert!(parse::parse("{} trailing").is_err());
    }

    #[test]
    fn fig5_round_trip() {
        let panel = run_panel(Fig5Panel::B, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        let v = parse::parse(&doc).expect("fig5 doc must parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("oll.fig5"));
        assert_eq!(
            v.get("version").and_then(Value::as_u64),
            Some(u64::from(SCHEMA_VERSION))
        );
        let series = v
            .get("panels")
            .and_then(|p| p.idx(0))
            .and_then(|p| p.get("series"))
            .and_then(|s| s.idx(0))
            .expect("one series");
        assert_eq!(series.get("lock").and_then(Value::as_str), Some("FOLL"));
        let points = series.get("points").and_then(Value::as_arr).unwrap();
        assert_eq!(points.len(), 2); // thread_counts [1, 2]
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.get("threads").and_then(Value::as_u64), Some(i as u64 + 1));
            assert!(p.get("acquires_per_sec").and_then(Value::as_f64).unwrap() > 0.0);
        }
    }

    #[test]
    fn latency_round_trip() {
        let config = WorkloadConfig {
            threads: 2,
            read_pct: 80,
            acquisitions_per_thread: 200,
            critical_work: 0,
            outside_work: 0,
            seed: 7,
            runs: 1,
            verify: false,
        };
        let r = run_latency(LockKind::SolarisLike, &config);
        let p50 = r.read.p50_ns;
        let count = r.read.count;
        let doc = render_latency_json(2, 80, 200, &[r], &[None]);
        let v = parse::parse(&doc).expect("latency doc must parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("oll.latency"));
        assert_eq!(
            v.get("version").and_then(Value::as_u64),
            Some(u64::from(SCHEMA_VERSION))
        );
        assert_eq!(v.get("read_pct").and_then(Value::as_u64), Some(80));
        let read = v
            .get("locks")
            .and_then(|l| l.idx(0))
            .and_then(|l| l.get("read"))
            .expect("read summary");
        assert_eq!(read.get("count").and_then(Value::as_u64), Some(count));
        assert_eq!(read.get("p50_ns").and_then(Value::as_u64), Some(p50));
    }

    #[test]
    fn trace_round_trip() {
        use oll_trace::{
            analyze, AnalyzerConfig, LockDescriptor, ThreadDescriptor, Timeline, TraceKind,
            TraceRecord,
        };

        // Tokens above 2^53 prove the hex-string path survives where a
        // JSON number would round.
        let token = 0xdead_beef_dead_beefu64;
        let rec = |ts_ns, tid, kind, token| TraceRecord {
            ts_ns,
            tid,
            lock: 1,
            kind,
            token,
        };
        let tl = Timeline {
            records: vec![
                rec(100, 2, TraceKind::WriteBegin, 0),
                rec(110, 2, TraceKind::WriteSlow, 0),
                rec(120, 2, TraceKind::Enqueued, token),
                rec(900, 1, TraceKind::WriteRelease, 0),
                rec(910, 1, TraceKind::Granted, token),
                rec(950, 2, TraceKind::WriteAcquired, 0),
            ],
            dropped: 2,
            locks: vec![LockDescriptor {
                id: 1,
                kind: "FOLL".to_string(),
                name: "rt \"quoted\"".to_string(),
            }],
            threads: vec![ThreadDescriptor {
                tid: 2,
                name: "worker-2".to_string(),
            }],
        };
        let report = analyze(&tl, &AnalyzerConfig::default());
        assert_eq!(report.edges.len(), 1);
        let doc = render_trace_json(&tl, &report);
        let v = parse::parse(&doc).expect("trace doc must parse");
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("oll.trace"));
        assert_eq!(
            v.get("version").and_then(Value::as_u64),
            Some(u64::from(SCHEMA_VERSION))
        );
        assert_eq!(v.get("records").and_then(Value::as_u64), Some(6));
        assert_eq!(v.get("dropped").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("truncated").and_then(Value::as_bool), Some(true));
        let lock = v.get("locks").and_then(|l| l.idx(0)).unwrap();
        assert_eq!(
            lock.get("name").and_then(Value::as_str),
            Some("rt \"quoted\"")
        );

        // Rebuild every record from the parsed events and compare.
        let events = v.get("events").and_then(Value::as_arr).unwrap();
        let rebuilt: Vec<TraceRecord> = events
            .iter()
            .map(|e| {
                let kind_name = e.idx(3).and_then(Value::as_str).unwrap();
                let tok = e.idx(4).and_then(Value::as_str).unwrap();
                TraceRecord {
                    ts_ns: e.idx(0).and_then(Value::as_u64).unwrap(),
                    tid: e.idx(1).and_then(Value::as_u64).unwrap() as u32,
                    lock: e.idx(2).and_then(Value::as_u64).unwrap() as u32,
                    kind: *TraceKind::ALL
                        .iter()
                        .find(|k| k.name() == kind_name)
                        .expect("kind name survives"),
                    token: u64::from_str_radix(tok.strip_prefix("0x").unwrap(), 16).unwrap(),
                }
            })
            .collect();
        assert_eq!(rebuilt, tl.records);

        let analysis = v.get("analysis").expect("analysis section");
        assert_eq!(
            analysis.get("acquisitions").and_then(Value::as_u64),
            Some(1)
        );
        assert_eq!(
            analysis.get("handoff_edges").and_then(Value::as_u64),
            Some(1)
        );
        let breakdown = analysis.get("breakdown").and_then(|b| b.idx(0)).unwrap();
        assert_eq!(
            breakdown.get("via_handoff").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn render_is_parse_inverse() {
        let doc = r#"{"a":[1,-2.5,1e3,true,null],"s":"q\" \\ A 😀","o":{"k":0.000087}}"#;
        let v = parse::parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(parse::parse(&rendered).unwrap(), v);
        // Idempotent: rendering the re-parse reproduces the same text.
        assert_eq!(parse::parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn merge_member_inserts_and_replaces() {
        let base = r#"{"schema":"oll.fig5","panels":[]}"#;
        let merged = merge_member(base, "async", r#"{"tasks":5}"#).unwrap();
        let v = parse::parse(&merged).unwrap();
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("oll.fig5"));
        assert_eq!(
            v.get("async")
                .and_then(|a| a.get("tasks"))
                .and_then(Value::as_u64),
            Some(5)
        );
        // Replacing an existing member keeps exactly one copy.
        let again = merge_member(&merged, "async", r#"{"tasks":9}"#).unwrap();
        let v = parse::parse(&again).unwrap();
        assert_eq!(
            v.get("async")
                .and_then(|a| a.get("tasks"))
                .and_then(Value::as_u64),
            Some(9)
        );
        assert_eq!(again.matches("\"async\":").count(), 1);
        // A non-object root is an error, not a panic.
        assert!(merge_member("[1,2]", "async", "{}").is_err());
    }

    #[test]
    fn fig5_document_survives_merge_round_trip() {
        let panel = run_panel(Fig5Panel::B, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        let merged = merge_member(&doc, "async", r#"{"schema":"oll.fig5_async"}"#).unwrap();
        let v = parse::parse(&merged).expect("merged doc must parse");
        // The fig5 members are untouched and the async member landed.
        assert_eq!(v.get("schema").and_then(Value::as_str), Some("oll.fig5"));
        assert!(v.get("panels").and_then(Value::as_arr).is_some());
        assert_eq!(
            v.get("async")
                .and_then(|a| a.get("schema"))
                .and_then(Value::as_str),
            Some("oll.fig5_async")
        );
    }

    #[test]
    fn latency_document_shape() {
        let config = WorkloadConfig {
            threads: 2,
            read_pct: 80,
            acquisitions_per_thread: 200,
            critical_work: 0,
            outside_work: 0,
            seed: 7,
            runs: 1,
            verify: false,
        };
        let r = run_latency(LockKind::SolarisLike, &config);
        let doc = render_latency_json(2, 80, 200, &[r], &[None]);
        assert!(doc.starts_with("{\"schema\":\"oll.latency\",\"version\":1,"));
        assert!(doc.contains("\"lock\":\"Solaris Like\""));
        assert!(doc.contains("\"read\":{\"count\":"));
        assert!(doc.contains("\"telemetry\":null"));
    }
}
