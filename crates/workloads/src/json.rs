//! Schema-versioned JSON reports for the workload binaries.
//!
//! Hand-rolled like `oll_telemetry::report` (the workspace carries no
//! serialization dependency). Two document schemas:
//!
//! - `oll.fig5` — the panels of a `fig5` run: every (lock × threads)
//!   point with throughput and, when collected, the lock's telemetry
//!   profile.
//! - `oll.latency` — a `latency` run: per-lock acquisition-latency
//!   percentiles, plus telemetry profiles when collected.
//!
//! Consumers should check `"schema"` and `"version"` before parsing;
//! [`oll_telemetry::report::SCHEMA_VERSION`] is bumped on any
//! backwards-incompatible change across all OLL JSON documents.

use crate::latency::{LatencyResult, LatencySummary};
use crate::sweep::PanelResult;
use oll_telemetry::report::{json_escape, render_lock_json, SCHEMA_VERSION};
use oll_telemetry::LockSnapshot;
use std::fmt::Write as _;

fn json_telemetry(profile: &Option<LockSnapshot>) -> String {
    match profile {
        Some(s) => render_lock_json(s),
        None => "null".to_string(),
    }
}

/// Renders a set of regenerated Figure 5 panels as one `oll.fig5`
/// document.
pub fn render_fig5_json(panels: &[PanelResult]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.fig5\",\"version\":{SCHEMA_VERSION},\"panels\":["
    );
    for (pi, panel) in panels.iter().enumerate() {
        if pi > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"panel\":\"{}\",\"read_pct\":{},\"thread_counts\":{:?},\"series\":[",
            panel.panel.tag(),
            panel.panel.read_pct(),
            panel.thread_counts,
        );
        for (si, s) in panel.series.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"lock\":\"{}\",\"points\":[",
                json_escape(s.kind.name())
            );
            for (i, p) in s.points.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let profile = s.profiles.get(i).cloned().flatten();
                let _ = write!(
                    out,
                    "{{\"threads\":{},\"acquires_per_sec\":{:.1},\"elapsed_secs\":{:.6},\"total_acquisitions\":{},\"telemetry\":{}}}",
                    p.threads,
                    p.acquires_per_sec,
                    p.elapsed.as_secs_f64(),
                    p.total_acquisitions,
                    json_telemetry(&profile),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn json_summary(s: &LatencySummary) -> String {
    format!(
        "{{\"count\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{}}}",
        s.count, s.p50_ns, s.p99_ns, s.p999_ns, s.max_ns
    )
}

/// Renders a latency run as one `oll.latency` document. `profiles` must
/// be parallel to `results` (pass an all-`None` slice when telemetry was
/// not collected).
pub fn render_latency_json(
    threads: usize,
    read_pct: u32,
    acquisitions_per_thread: usize,
    results: &[LatencyResult],
    profiles: &[Option<LockSnapshot>],
) -> String {
    debug_assert_eq!(results.len(), profiles.len());
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"oll.latency\",\"version\":{SCHEMA_VERSION},\"threads\":{threads},\"read_pct\":{read_pct},\"acquisitions_per_thread\":{acquisitions_per_thread},\"locks\":["
    );
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let profile = profiles.get(i).cloned().flatten();
        let _ = write!(
            out,
            "{{\"lock\":\"{}\",\"read\":{},\"write\":{},\"telemetry\":{}}}",
            json_escape(r.kind.name()),
            json_summary(&r.read),
            json_summary(&r.write),
            json_telemetry(&profile),
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Fig5Panel, LockKind, WorkloadConfig};
    use crate::latency::run_latency;
    use crate::sweep::{run_panel, SweepOptions};

    fn tiny_opts() -> SweepOptions {
        SweepOptions {
            thread_counts: vec![1, 2],
            locks: vec![LockKind::Foll],
            base: WorkloadConfig {
                threads: 1,
                read_pct: 99,
                acquisitions_per_thread: 100,
                critical_work: 0,
                outside_work: 0,
                seed: 3,
                runs: 1,
                verify: false,
            },
            progress: false,
            collect_telemetry: true,
        }
    }

    #[test]
    fn fig5_document_shape() {
        let panel = run_panel(Fig5Panel::B, &tiny_opts());
        let doc = render_fig5_json(&[panel]);
        assert!(doc.starts_with("{\"schema\":\"oll.fig5\",\"version\":1,"));
        assert!(doc.contains("\"panel\":\"b\""));
        assert!(doc.contains("\"read_pct\":99"));
        assert!(doc.contains("\"lock\":\"FOLL\""));
        assert!(doc.contains("\"threads\":1"));
        assert!(doc.contains("\"telemetry\":"));
        // Two points -> exactly two telemetry fields.
        assert_eq!(doc.matches("\"telemetry\":").count(), 2);
        // With the feature off, profiles must be null; with it on, FOLL
        // records and its profile must carry the acquisition counts.
        if oll_telemetry::Telemetry::enabled() {
            assert!(doc.contains("\"read_fast\""), "doc: {doc}");
        } else {
            assert!(doc.contains("\"telemetry\":null"));
        }
    }

    #[test]
    fn latency_document_shape() {
        let config = WorkloadConfig {
            threads: 2,
            read_pct: 80,
            acquisitions_per_thread: 200,
            critical_work: 0,
            outside_work: 0,
            seed: 7,
            runs: 1,
            verify: false,
        };
        let r = run_latency(LockKind::SolarisLike, &config);
        let doc = render_latency_json(2, 80, 200, &[r], &[None]);
        assert!(doc.starts_with("{\"schema\":\"oll.latency\",\"version\":1,"));
        assert!(doc.contains("\"lock\":\"Solaris Like\""));
        assert!(doc.contains("\"read\":{\"count\":"));
        assert!(doc.contains("\"telemetry\":null"));
    }
}
