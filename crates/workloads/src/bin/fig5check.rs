//! `fig5check` — validate an `oll.fig5` JSON document.
//!
//! ```text
//! USAGE:
//!   fig5check PATH [--expect-adaptive] [--expect-biased] [--expect-hazard]
//!             [--expect-shape N] [--expect-async] [--expect-async-tasks N]
//!             [--expect-obs] [--expect-cohort] [--expect-tuned]
//! ```
//!
//! Parses the document with the in-tree parser (`oll_workloads::json`),
//! checks the schema shape the renderer promises (every panel carries
//! `adaptive`/`biased`/`hazard`/`shape_threads`, every point a positive
//! throughput), and exits nonzero with a diagnostic on the first
//! violation. CI's bench-smoke lane runs it against short
//! `fig5 --adaptive --json` and `fig5 --biased --json` sweeps so both
//! option paths are validated end to end: CLI flag → lock builders →
//! sweep → JSON report → parser.
//!
//! `--expect-async` requires the document to carry the `"async"` member
//! that `fig5_async --merge` folds in (an `oll.fig5_async` panel) and
//! re-checks its invariants: every task accounted for (granted or timed
//! out), zero C-SNZI surplus and zero queued waiters at exit, positive
//! throughput. `--expect-async-tasks N` additionally demands the
//! recorded run drove at least N tasks — the committed
//! `BENCH_fig5.json` is checked with `--expect-async-tasks 1000000`.
//!
//! `--expect-obs` requires the `"obs"` member that `fig5_obs --merge`
//! folds in (an `oll.fig5_obs` sampler-overhead comparison) and checks
//! it was a live measurement: the sampler was active and ticking at a
//! positive interval, every lock has finite positive throughput in both
//! passes, and the overall overhead is a finite percentage.
//!
//! `--expect-cohort` requires the `"cohort"` member that
//! `fig5_cohort --merge` folds in (an `oll.fig5_cohort` paired
//! off/on comparison of the NUMA cohort writer gate) and checks its
//! shape: at least one locality rank and a positive batch bound were
//! recorded, every lock has finite positive throughput with the gate
//! off and on, and the overall delta is a finite percentage.
//!
//! `--expect-tuned` requires the `"tuned"` member that
//! `fig5_tuned --merge` folds in (an `oll.fig5_tuned` paired bare/tuned
//! comparison of the self-tuning policy controller) and checks its
//! shape: at least one panel and one lock row were recorded, every row
//! names a real panel and has finite positive throughput bare and
//! tuned, and the per-row and overall deltas are finite percentages.
//!
//! Regardless of the `--expect-*` flags, any merged members present are
//! cross-checked for agreement: a member merged under the wrong key
//! (its `schema` does not match the key), a member from a different
//! schema revision (its `version` differs from the document's), or
//! members recorded on machines with disagreeing locality topologies
//! (their `ranks` differ) are rejected. A `BENCH_fig5.json` assembled
//! from stale or foreign member runs fails instead of parsing clean.

use oll_workloads::json::parse::{self, Value};
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5check PATH [--expect-adaptive] [--expect-biased] [--expect-hazard] \
         [--expect-shape N] [--expect-async] [--expect-async-tasks N] [--expect-obs] \
         [--expect-cohort] [--expect-tuned]"
    );
    exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("fig5check: FAIL: {msg}");
    exit(1);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut expect_adaptive = false;
    let mut expect_biased = false;
    let mut expect_hazard = false;
    let mut expect_shape = None;
    let mut expect_async = false;
    let mut expect_async_tasks = None;
    let mut expect_obs = false;
    let mut expect_cohort = false;
    let mut expect_tuned = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--expect-adaptive" => expect_adaptive = true,
            "--expect-biased" => expect_biased = true,
            "--expect-hazard" => expect_hazard = true,
            "--expect-async" => expect_async = true,
            "--expect-obs" => expect_obs = true,
            "--expect-cohort" => expect_cohort = true,
            "--expect-tuned" => expect_tuned = true,
            "--expect-async-tasks" => {
                let v = argv
                    .get(i + 1)
                    .unwrap_or_else(|| usage("missing value for --expect-async-tasks"));
                expect_async_tasks = Some(
                    v.parse::<u64>()
                        .unwrap_or_else(|_| usage("bad --expect-async-tasks")),
                );
                expect_async = true;
                i += 1;
            }
            "--expect-shape" => {
                let v = argv
                    .get(i + 1)
                    .unwrap_or_else(|| usage("missing value for --expect-shape"));
                expect_shape = Some(
                    v.parse::<u64>()
                        .unwrap_or_else(|_| usage("bad --expect-shape")),
                );
                i += 1;
            }
            "--help" | "-h" => usage("help requested"),
            other if path.is_none() => path = Some(other.to_string()),
            other => usage(&format!("unexpected argument `{other}`")),
        }
        i += 1;
    }
    let path = path.unwrap_or_else(|| usage("missing PATH"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    let doc = parse::parse(&text).unwrap_or_else(|e| fail(&format!("{path}: not valid JSON: {e}")));

    if doc.get("schema").and_then(Value::as_str) != Some("oll.fig5") {
        fail("schema is not \"oll.fig5\"");
    }
    let panels = doc
        .get("panels")
        .and_then(Value::as_arr)
        .unwrap_or_else(|| fail("missing panels array"));
    if panels.is_empty() {
        fail("no panels");
    }
    let mut points = 0usize;
    for (pi, panel) in panels.iter().enumerate() {
        let tag = panel
            .get("panel")
            .and_then(Value::as_str)
            .unwrap_or_else(|| fail(&format!("panel[{pi}]: missing tag")));
        let adaptive = panel
            .get("adaptive")
            .and_then(Value::as_bool)
            .unwrap_or_else(|| fail(&format!("panel {tag}: missing adaptive flag")));
        if expect_adaptive && !adaptive {
            fail(&format!("panel {tag}: adaptive=false, expected true"));
        }
        let biased = panel
            .get("biased")
            .and_then(Value::as_bool)
            .unwrap_or_else(|| fail(&format!("panel {tag}: missing biased flag")));
        if expect_biased && !biased {
            fail(&format!("panel {tag}: biased=false, expected true"));
        }
        let hazard = panel
            .get("hazard")
            .and_then(Value::as_bool)
            .unwrap_or_else(|| fail(&format!("panel {tag}: missing hazard flag")));
        if expect_hazard && !hazard {
            fail(&format!("panel {tag}: hazard=false, expected true"));
        }
        let shape = panel.get("shape_threads");
        match (expect_shape, shape.and_then(Value::as_u64)) {
            (Some(want), Some(got)) if want != got => fail(&format!(
                "panel {tag}: shape_threads={got}, expected {want}"
            )),
            (Some(want), None) => {
                fail(&format!("panel {tag}: shape_threads=null, expected {want}"))
            }
            _ => {}
        }
        let series = panel
            .get("series")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| fail(&format!("panel {tag}: missing series")));
        if series.is_empty() {
            fail(&format!("panel {tag}: no series"));
        }
        for s in series {
            let lock = s
                .get("lock")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail(&format!("panel {tag}: series missing lock name")));
            let pts = s
                .get("points")
                .and_then(Value::as_arr)
                .unwrap_or_else(|| fail(&format!("panel {tag}/{lock}: missing points")));
            for p in pts {
                let rate = p
                    .get("acquires_per_sec")
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| fail(&format!("panel {tag}/{lock}: missing throughput")));
                if !(rate.is_finite() && rate > 0.0) {
                    fail(&format!(
                        "panel {tag}/{lock}: non-positive throughput {rate}"
                    ));
                }
                points += 1;
            }
        }
    }
    // Cross-member agreement, checked whenever members are present (the
    // per-member `--expect-*` passes only look inside one member each).
    // A member merged under the wrong key, carried over from a different
    // schema revision, or recorded on a machine whose locality topology
    // disagrees with another member's is a stale or foreign artifact.
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .unwrap_or_else(|| fail("missing version"));
    let mut ranks_seen: Option<(&str, u64)> = None;
    for key in ["async", "obs", "cohort", "tuned"] {
        let Some(member) = doc.get(key) else { continue };
        let want_schema = format!("oll.fig5_{key}");
        match member.get("schema").and_then(Value::as_str) {
            Some(got) if got == want_schema => {}
            Some(got) => fail(&format!(
                "member {key}: schema \"{got}\" disagrees with its key \
                 (expected \"{want_schema}\" — merged under the wrong key?)"
            )),
            None => fail(&format!("member {key}: missing schema")),
        }
        match member.get("version").and_then(Value::as_u64) {
            Some(v) if v == version => {}
            Some(v) => fail(&format!(
                "member {key}: version {v} disagrees with the document's \
                 {version} (regenerate the stale member)"
            )),
            None => fail(&format!("member {key}: missing version")),
        }
        if let Some(r) = member.get("ranks").and_then(Value::as_u64) {
            match ranks_seen {
                Some((other, seen)) if seen != r => fail(&format!(
                    "member {key}: {r} locality rank(s) disagrees with \
                     member {other}'s {seen} (members recorded on \
                     different machines?)"
                )),
                Some(_) => {}
                None => ranks_seen = Some((key, r)),
            }
        }
    }
    let mut async_tasks = None;
    if expect_async {
        let a = doc
            .get("async")
            .unwrap_or_else(|| fail("missing async member (run fig5_async --merge)"));
        if a.get("schema").and_then(Value::as_str) != Some("oll.fig5_async") {
            fail("async member's schema is not \"oll.fig5_async\"");
        }
        let field = |key: &str| -> u64 {
            a.get(key)
                .and_then(Value::as_u64)
                .unwrap_or_else(|| fail(&format!("async member: missing {key}")))
        };
        let tasks = field("tasks");
        let workers = field("workers");
        if tasks == 0 || workers == 0 {
            fail("async member: zero tasks or workers");
        }
        if let Some(want) = expect_async_tasks {
            if tasks < want {
                fail(&format!(
                    "async member: {tasks} task(s), expected >= {want}"
                ));
            }
        }
        let accounted = field("granted_reads") + field("granted_writes") + field("timed_out");
        if accounted != tasks {
            fail(&format!(
                "async member: {accounted} task(s) accounted for, expected {tasks}"
            ));
        }
        if field("surplus_at_exit") != 0 || field("queued_at_exit") != 0 {
            fail("async member: leaked exit state (surplus or queue nonzero)");
        }
        let rate = a
            .get("tasks_per_sec")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail("async member: missing tasks_per_sec"));
        if !(rate.is_finite() && rate > 0.0) {
            fail(&format!("async member: non-positive throughput {rate}"));
        }
        if a.get("grant_latency").is_none() {
            fail("async member: missing grant_latency");
        }
        async_tasks = Some((tasks, workers));
    }
    let mut cohort_delta = None;
    if expect_cohort {
        let c = doc
            .get("cohort")
            .unwrap_or_else(|| fail("missing cohort member (run fig5_cohort --merge)"));
        if c.get("schema").and_then(Value::as_str) != Some("oll.fig5_cohort") {
            fail("cohort member's schema is not \"oll.fig5_cohort\"");
        }
        let ranks = c
            .get("ranks")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| fail("cohort member: missing ranks"));
        if ranks == 0 {
            fail("cohort member: zero locality ranks");
        }
        let batch = c
            .get("batch")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| fail("cohort member: missing batch"));
        if batch == 0 {
            fail("cohort member: zero batch bound");
        }
        let locks = c
            .get("locks")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| fail("cohort member: missing locks array"));
        if locks.is_empty() {
            fail("cohort member: no locks");
        }
        for l in locks {
            let name = l
                .get("lock")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail("cohort member: lock row missing name"));
            for key in ["off_acquires_per_sec", "on_acquires_per_sec"] {
                let rate = l
                    .get(key)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| fail(&format!("cohort member/{name}: missing {key}")));
                if !(rate.is_finite() && rate > 0.0) {
                    fail(&format!("cohort member/{name}: non-positive {key} {rate}"));
                }
            }
        }
        let overall = c
            .get("overall_delta_pct")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail("cohort member: missing overall_delta_pct"));
        if !overall.is_finite() {
            fail(&format!("cohort member: non-finite delta {overall}"));
        }
        cohort_delta = Some((ranks, overall));
    }
    let mut tuned_delta = None;
    if expect_tuned {
        let t = doc
            .get("tuned")
            .unwrap_or_else(|| fail("missing tuned member (run fig5_tuned --merge)"));
        if t.get("schema").and_then(Value::as_str) != Some("oll.fig5_tuned") {
            fail("tuned member's schema is not \"oll.fig5_tuned\"");
        }
        let tuned_panels = t
            .get("panels")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| fail("tuned member: missing panels array"));
        if tuned_panels.is_empty() {
            fail("tuned member: no panels");
        }
        let locks = t
            .get("locks")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| fail("tuned member: missing locks array"));
        if locks.is_empty() {
            fail("tuned member: no locks");
        }
        for l in locks {
            let name = l
                .get("lock")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail("tuned member: lock row missing name"));
            let panel = l
                .get("panel")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail(&format!("tuned member/{name}: missing panel")));
            if !matches!(panel, "a" | "b" | "c" | "d" | "e" | "f") {
                fail(&format!("tuned member/{name}: unknown panel \"{panel}\""));
            }
            for key in [
                "bare_acquires_per_sec",
                "tuned_acquires_per_sec",
                "delta_pct",
            ] {
                let v = l.get(key).and_then(Value::as_f64).unwrap_or_else(|| {
                    fail(&format!("tuned member/{name}/{panel}: missing {key}"))
                });
                if !v.is_finite() {
                    fail(&format!(
                        "tuned member/{name}/{panel}: non-finite {key} {v}"
                    ));
                }
                if key != "delta_pct" && v <= 0.0 {
                    fail(&format!(
                        "tuned member/{name}/{panel}: non-positive {key} {v}"
                    ));
                }
            }
        }
        let overall = t
            .get("overall_delta_pct")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail("tuned member: missing overall_delta_pct"));
        if !overall.is_finite() {
            fail(&format!("tuned member: non-finite delta {overall}"));
        }
        tuned_delta = Some((tuned_panels.len(), overall));
    }
    let mut obs_overhead = None;
    if expect_obs {
        let o = doc
            .get("obs")
            .unwrap_or_else(|| fail("missing obs member (run fig5_obs --merge)"));
        if o.get("schema").and_then(Value::as_str) != Some("oll.fig5_obs") {
            fail("obs member's schema is not \"oll.fig5_obs\"");
        }
        if o.get("sampler_active").and_then(Value::as_bool) != Some(true) {
            fail("obs member: sampler was not active (built without the obs feature?)");
        }
        let interval = o
            .get("interval_ms")
            .and_then(Value::as_u64)
            .unwrap_or_else(|| fail("obs member: missing interval_ms"));
        if interval == 0 {
            fail("obs member: zero interval_ms");
        }
        let locks = o
            .get("locks")
            .and_then(Value::as_arr)
            .unwrap_or_else(|| fail("obs member: missing locks array"));
        if locks.is_empty() {
            fail("obs member: no locks");
        }
        for l in locks {
            let name = l
                .get("lock")
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail("obs member: lock row missing name"));
            for key in ["off_acquires_per_sec", "on_acquires_per_sec"] {
                let rate = l
                    .get(key)
                    .and_then(Value::as_f64)
                    .unwrap_or_else(|| fail(&format!("obs member/{name}: missing {key}")));
                if !(rate.is_finite() && rate > 0.0) {
                    fail(&format!("obs member/{name}: non-positive {key} {rate}"));
                }
            }
        }
        let overall = o
            .get("overall_overhead_pct")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail("obs member: missing overall_overhead_pct"));
        if !overall.is_finite() {
            fail(&format!("obs member: non-finite overhead {overall}"));
        }
        obs_overhead = Some(overall);
    }
    println!(
        "fig5check: OK: {path}: {} panel(s), {points} point(s){}{}{}{}{}{}{}{}",
        panels.len(),
        if expect_adaptive { ", adaptive" } else { "" },
        if expect_biased { ", biased" } else { "" },
        if expect_hazard { ", hazard" } else { "" },
        match expect_shape {
            Some(n) => format!(", shape_threads={n}"),
            None => String::new(),
        },
        match async_tasks {
            Some((t, w)) => format!(", async {t} task(s) on {w} worker(s)"),
            None => String::new(),
        },
        match obs_overhead {
            Some(pct) => format!(", obs {pct:.2}% sampler overhead"),
            None => String::new(),
        },
        match cohort_delta {
            Some((ranks, pct)) => {
                format!(", cohort {pct:+.2}% delta over {ranks} rank(s)")
            }
            None => String::new(),
        },
        match tuned_delta {
            Some((n, pct)) => {
                format!(", tuned {pct:+.2}% delta over {n} panel(s)")
            }
            None => String::new(),
        },
    );
}
