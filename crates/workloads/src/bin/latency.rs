//! `latency` — per-acquisition latency percentiles for every lock.
//!
//! ```text
//! USAGE:
//!   latency [--threads N] [--read-pct P] [--acquisitions N]
//!           [--locks name,...|all] [--biased] [--hazard] [--cohort]
//!           [--self-tuning] [--json PATH] [--telemetry]
//!           [--trace PATH] [--trace-json PATH] [--flame PATH]
//!           [--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]
//! ```
//!
//! Complements the throughput-oriented `fig5` binary with tail-latency
//! visibility: how long can a single `lock_read` / `lock_write` stall
//! under the given mix? `--biased` wraps the OLL locks (GOLL/FOLL/ROLL)
//! in the BRAVO reader-biasing layer, exposing the biased read fast
//! path's latency. `--hazard` arms the `oll-hazard` hardening layer on
//! every lock (poison policy + deadlock-detection tracking) so its cost
//! shows in the tails; needs a `--features hazard` build to do
//! anything. `--cohort` builds FOLL/ROLL with the NUMA cohort writer
//! gate (batched same-socket write hand-off), exposing what the batch
//! bound does to writer tails. `--self-tuning` wraps the OLL locks in
//! the `SelfTuning` online policy controller, so the tails include any
//! mid-run knob steering (bias arm/disarm, deflation, backoff) the
//! controller decides on. `--telemetry` additionally prints each lock's
//! contention profile (needs a `--features telemetry` build to record);
//! `--json` writes a schema-versioned `oll.latency` document. `--trace`
//! captures the run in the flight recorder and writes a Perfetto-loadable
//! Chrome Trace Event file (needs a `--features trace` build);
//! `--trace-json` also writes the raw capture as an `oll.trace`
//! document, and `--flame` the analyzer's wait breakdowns as folded
//! stacks for flamegraph tooling. `--obs` runs the measurement under
//! the continuous-monitoring sampler (needs a `--features obs` build),
//! optionally serving Prometheus text on ADDR; `--obs-json` writes the
//! final `oll.obs` document.

use oll_trace::TraceSession;
use oll_workloads::config::{LockKind, LockOptions, WorkloadConfig};
use oll_workloads::json::render_latency_json;
use oll_workloads::latency::run_latency_profiled_with;
use oll_workloads::obsio::{self, ObsArgs};
use oll_workloads::traceio;
use std::io::Write as _;
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: latency [--threads N] [--read-pct P] [--acquisitions N] [--locks name,...|all] \
         [--biased] [--hazard] [--cohort] [--self-tuning] [--json PATH] [--telemetry] \
         [--trace PATH] [--trace-json PATH] \
         [--flame PATH] [--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]"
    );
    exit(2);
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let mut threads = 4usize;
    let mut read_pct = 95u32;
    let mut acquisitions = 10_000usize;
    let mut locks = LockKind::FIGURE5.to_vec();
    let mut json: Option<String> = None;
    let mut lock_options = LockOptions::default();
    let mut telemetry = false;
    let mut trace: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut flame: Option<String> = None;
    let mut obs = ObsArgs::default();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if obsio::parse_flag(&argv, &mut i, &mut obs, &mut |m| usage(m)) {
            i += 1;
            continue;
        }
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--threads" => {
                threads = value(i).parse().unwrap_or_else(|_| usage("bad --threads"));
                i += 1;
            }
            "--read-pct" => {
                read_pct = value(i).parse().unwrap_or_else(|_| usage("bad --read-pct"));
                if read_pct > 100 {
                    usage("--read-pct must be 0..=100");
                }
                i += 1;
            }
            "--acquisitions" => {
                acquisitions = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--locks" => {
                let v = value(i);
                i += 1;
                if v.eq_ignore_ascii_case("all") {
                    locks = LockKind::ALL.to_vec();
                } else {
                    locks = v
                        .split(',')
                        .map(|l| {
                            LockKind::parse(l)
                                .unwrap_or_else(|| usage(&format!("unknown lock `{l}`")))
                        })
                        .collect();
                }
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--biased" => lock_options.biased = true,
            "--hazard" => lock_options.hazard = true,
            "--cohort" => lock_options.cohort = true,
            "--self-tuning" => lock_options.self_tuning = true,
            "--telemetry" => telemetry = true,
            "--trace" => {
                trace = Some(value(i));
                i += 1;
            }
            "--trace-json" => {
                trace_json = Some(value(i));
                i += 1;
            }
            "--flame" => {
                flame = Some(value(i));
                i += 1;
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    if telemetry && !oll_telemetry::Telemetry::enabled() {
        eprintln!(
            "warning: this binary was built without the `telemetry` feature; \
             no profiles will be recorded. Rebuild with:\n  \
             cargo run -p oll-workloads --release --features telemetry --bin latency -- --telemetry"
        );
    }
    if trace.is_none() && trace_json.is_some() {
        usage("--trace-json needs --trace");
    }
    if trace.is_none() && flame.is_some() {
        usage("--flame needs --trace");
    }
    if trace.is_some() {
        traceio::warn_if_disabled("latency");
    }
    if obs.on {
        obsio::warn_if_disabled("latency");
    }
    let session = trace.as_ref().map(|_| TraceSession::begin());
    let obs_session = obsio::start(&obs, &mut |m| usage(m));

    let config = WorkloadConfig {
        threads,
        read_pct,
        acquisitions_per_thread: acquisitions,
        critical_work: 0,
        outside_work: 0,
        seed: 0x7A7E_2009,
        runs: 1,
        verify: false,
    };

    println!(
        "latency: {threads} threads, {read_pct}% reads, {acquisitions} acquisitions/thread{}{}{}{}",
        if lock_options.biased {
            ", BRAVO-biased OLL locks"
        } else {
            ""
        },
        if lock_options.hazard {
            ", hazard layer armed"
        } else {
            ""
        },
        if lock_options.cohort {
            ", cohort writer gate"
        } else {
            ""
        },
        if lock_options.self_tuning {
            ", self-tuning controller"
        } else {
            ""
        }
    );
    println!(
        "{:<13} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "lock", "r.p50", "r.p99", "r.p999", "r.max", "w.p50", "w.p99", "w.p999", "w.max"
    );
    let mut results = Vec::with_capacity(locks.len());
    let mut profiles = Vec::with_capacity(locks.len());
    for kind in locks {
        let (r, profile) = run_latency_profiled_with(kind, &config, &lock_options);
        println!(
            "{:<13} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
            r.kind.name(),
            fmt_ns(r.read.p50_ns),
            fmt_ns(r.read.p99_ns),
            fmt_ns(r.read.p999_ns),
            fmt_ns(r.read.max_ns),
            fmt_ns(r.write.p50_ns),
            fmt_ns(r.write.p99_ns),
            fmt_ns(r.write.p999_ns),
            fmt_ns(r.write.max_ns),
        );
        results.push(r);
        profiles.push(profile);
    }

    if telemetry {
        let recorded: Vec<_> = profiles.iter().flatten().cloned().collect();
        println!("\n-- telemetry --");
        println!("{}", oll_telemetry::report::render_text(&recorded));
    }
    if let Some(path) = json {
        let doc = render_latency_json(threads, read_pct, acquisitions, &results, &profiles);
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        f.write_all(b"\n")
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(session) = obs_session {
        let text = obsio::finish(session, obs.json.as_deref())
            .unwrap_or_else(|e| usage(&format!("cannot write obs report: {e}")));
        println!("-- obs --\n{text}");
    }
    if let (Some(path), Some(session)) = (&trace, session) {
        let tl = session.collect();
        let text = traceio::write_outputs(&tl, path, trace_json.as_deref(), flame.as_deref())
            .unwrap_or_else(|e| usage(&format!("cannot write trace: {e}")));
        println!("-- flight recorder --\n{text}");
        eprintln!("wrote {path}");
        if let Some(doc) = &trace_json {
            eprintln!("wrote {doc}");
        }
        if let Some(f) = &flame {
            eprintln!("wrote {f}");
        }
    }
}
