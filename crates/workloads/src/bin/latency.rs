//! `latency` — per-acquisition latency percentiles for every lock.
//!
//! ```text
//! USAGE:
//!   latency [--threads N] [--read-pct P] [--acquisitions N]
//!           [--locks name,...|all]
//! ```
//!
//! Complements the throughput-oriented `fig5` binary with tail-latency
//! visibility: how long can a single `lock_read` / `lock_write` stall
//! under the given mix?

use oll_workloads::config::{LockKind, WorkloadConfig};
use oll_workloads::latency::run_latency;
use std::process::exit;

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: latency [--threads N] [--read-pct P] [--acquisitions N] [--locks name,...|all]"
    );
    exit(2);
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn main() {
    let mut threads = 4usize;
    let mut read_pct = 95u32;
    let mut acquisitions = 10_000usize;
    let mut locks = LockKind::FIGURE5.to_vec();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--threads" => {
                threads = value(i).parse().unwrap_or_else(|_| usage("bad --threads"));
                i += 1;
            }
            "--read-pct" => {
                read_pct = value(i).parse().unwrap_or_else(|_| usage("bad --read-pct"));
                if read_pct > 100 {
                    usage("--read-pct must be 0..=100");
                }
                i += 1;
            }
            "--acquisitions" => {
                acquisitions = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--locks" => {
                let v = value(i);
                i += 1;
                if v.eq_ignore_ascii_case("all") {
                    locks = LockKind::ALL.to_vec();
                } else {
                    locks = v
                        .split(',')
                        .map(|l| {
                            LockKind::parse(l)
                                .unwrap_or_else(|| usage(&format!("unknown lock `{l}`")))
                        })
                        .collect();
                }
            }
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }

    let config = WorkloadConfig {
        threads,
        read_pct,
        acquisitions_per_thread: acquisitions,
        critical_work: 0,
        outside_work: 0,
        seed: 0x7A7E_2009,
        runs: 1,
        verify: false,
    };

    println!("latency: {threads} threads, {read_pct}% reads, {acquisitions} acquisitions/thread");
    println!(
        "{:<13} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
        "lock", "r.p50", "r.p99", "r.p999", "r.max", "w.p50", "w.p99", "w.p999", "w.max"
    );
    for kind in locks {
        let r = run_latency(kind, &config);
        println!(
            "{:<13} {:>8} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8}",
            r.kind.name(),
            fmt_ns(r.read.p50_ns),
            fmt_ns(r.read.p99_ns),
            fmt_ns(r.read.p999_ns),
            fmt_ns(r.read.max_ns),
            fmt_ns(r.write.p50_ns),
            fmt_ns(r.write.p99_ns),
            fmt_ns(r.write.p999_ns),
            fmt_ns(r.write.max_ns),
        );
    }
}
