//! `fig5` — regenerate the throughput panels of Figure 5.
//!
//! ```text
//! USAGE:
//!   fig5 [--panel a|b|c|d|e|f|all] [--threads 1,2,4,8,16]
//!        [--locks GOLL,FOLL,ROLL,KSUH,Solaris-Like,...|all]
//!        [--acquisitions N] [--runs N] [--paper] [--verify]
//!        [--adaptive] [--biased] [--hazard] [--cohort] [--self-tuning]
//!        [--shape N]
//!        [--csv PATH] [--json PATH] [--telemetry]
//!        [--trace PATH] [--trace-json PATH] [--flame PATH]
//!        [--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]
//! ```
//!
//! Defaults are scaled for a small machine; `--paper` switches to the
//! paper's exact per-thread acquisition counts (100k, or 10k at ≤50%
//! reads). `--telemetry` prints each lock's contention profile (counts
//! and histograms) after its panel; it needs a build with the
//! `telemetry` cargo feature to record anything. `--json` writes the
//! whole run as a schema-versioned `oll.fig5` document, including the
//! profiles when collected. `--trace` captures the run in the flight
//! recorder and writes a Chrome Trace Event file that loads directly in
//! Perfetto (needs a `--features trace` build); `--trace-json` also
//! writes the raw capture as an `oll.trace` document.
//!
//! `--adaptive` builds the OLL locks (GOLL/FOLL/ROLL) with adaptive
//! C-SNZIs — root-only until contention inflates the tree — and
//! `--shape N` overrides the tree shape to one sized for N threads
//! (capping the adaptive tree). `--biased` wraps the OLL locks in the
//! BRAVO reader-biasing layer: biased reads publish into the global
//! visible-readers table and skip the underlying lock entirely until a
//! writer revokes the bias. `--hazard` arms the `oll-hazard` hardening
//! layer on every lock (poison policy + deadlock-detection tracking) so
//! its steady-state overhead is measurable; it needs a build with the
//! `hazard` cargo feature to do anything. `--cohort` builds FOLL/ROLL
//! with the NUMA cohort writer gate: per-socket writer queues that hand
//! the write lock to same-socket waiters up to a batch bound before
//! releasing cross-node (GOLL and the baselines ignore it).
//! `--self-tuning` wraps the OLL locks in the `SelfTuning` online policy
//! controller: the lock's own observed read/write mix, slow-path
//! fraction, and revocation cost steer its BRAVO bias, C-SNZI deflation,
//! backoff, and cohort-batch knobs while the sweep runs (the baselines
//! have no knobs and ignore it). All six options are recorded in the
//! JSON report.
//!
//! `--obs` runs the whole sweep under the continuous-monitoring sampler
//! (needs a `--features obs` build); with an ADDR it also serves
//! Prometheus text on `http://ADDR/metrics` (plus `/json` and
//! `/health`) for the duration of the run, and `--obs-json` writes the
//! final `oll.obs` document. `--flame` writes the trace analyzer's wait
//! breakdowns as folded stacks for flamegraph tooling (needs
//! `--trace`).

use oll_trace::TraceSession;
use oll_workloads::config::{Fig5Panel, LockKind, WorkloadConfig};
use oll_workloads::json::render_fig5_json;
use oll_workloads::obsio::{self, ObsArgs};
use oll_workloads::report::{render_csv, render_table};
use oll_workloads::sweep::{run_panel, PanelResult, SweepOptions};
use oll_workloads::traceio;
use std::io::Write as _;
use std::process::exit;

struct Args {
    panels: Vec<Fig5Panel>,
    opts: SweepOptions,
    csv: Option<String>,
    json: Option<String>,
    telemetry: bool,
    trace: Option<String>,
    trace_json: Option<String>,
    flame: Option<String>,
    obs: ObsArgs,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5 [--panel a|b|c|d|e|f|all] [--threads 1,2,4]\n\
         \t[--locks name,...|all] [--acquisitions N] [--runs N]\n\
         \t[--paper] [--verify] [--adaptive] [--biased] [--hazard] [--cohort]\n\
         \t[--self-tuning] [--shape N]\n\
         \t[--csv PATH] [--json PATH] [--telemetry]\n\
         \t[--trace PATH] [--trace-json PATH] [--flame PATH]\n\
         \t[--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut panels = Fig5Panel::ALL.to_vec();
    let mut opts = SweepOptions::quick();
    opts.progress = true;
    let mut csv = None;
    let mut json = None;
    let mut telemetry = false;
    let mut paper = false;
    let mut trace = None;
    let mut trace_json = None;
    let mut flame = None;
    let mut obs = ObsArgs::default();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if obsio::parse_flag(&argv, &mut i, &mut obs, &mut |m| usage(m)) {
            i += 1;
            continue;
        }
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--panel" => {
                let v = value(i);
                i += 1;
                if v.eq_ignore_ascii_case("all") {
                    panels = Fig5Panel::ALL.to_vec();
                } else {
                    panels = v
                        .split(',')
                        .map(|p| {
                            Fig5Panel::parse(p)
                                .unwrap_or_else(|| usage(&format!("unknown panel `{p}`")))
                        })
                        .collect();
                }
            }
            "--threads" => {
                let v = value(i);
                i += 1;
                opts.thread_counts = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| usage(&format!("bad thread count `{t}`")))
                    })
                    .collect();
                if opts.thread_counts.is_empty() {
                    usage("--threads needs at least one value");
                }
            }
            "--locks" => {
                let v = value(i);
                i += 1;
                if v.eq_ignore_ascii_case("all") {
                    opts.locks = LockKind::ALL.to_vec();
                } else {
                    opts.locks = v
                        .split(',')
                        .map(|l| {
                            LockKind::parse(l)
                                .unwrap_or_else(|| usage(&format!("unknown lock `{l}`")))
                        })
                        .collect();
                }
            }
            "--acquisitions" => {
                opts.base.acquisitions_per_thread = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--runs" => {
                opts.base.runs = value(i).parse().unwrap_or_else(|_| usage("bad --runs"));
                i += 1;
            }
            "--paper" => paper = true,
            "--verify" => opts.base.verify = true,
            "--adaptive" => opts.lock_options.adaptive = true,
            "--biased" => opts.lock_options.biased = true,
            "--hazard" => opts.lock_options.hazard = true,
            "--cohort" => opts.lock_options.cohort = true,
            "--self-tuning" => opts.lock_options.self_tuning = true,
            "--shape" => {
                let n: usize = value(i).parse().unwrap_or_else(|_| usage("bad --shape"));
                if n == 0 {
                    usage("--shape needs a positive thread count");
                }
                opts.lock_options.shape_threads = Some(n);
                i += 1;
            }
            "--csv" => {
                csv = Some(value(i));
                i += 1;
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--telemetry" => telemetry = true,
            "--trace" => {
                trace = Some(value(i));
                i += 1;
            }
            "--trace-json" => {
                trace_json = Some(value(i));
                i += 1;
            }
            "--flame" => {
                flame = Some(value(i));
                i += 1;
            }
            "--quiet" => opts.progress = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if paper {
        opts.base = WorkloadConfig {
            verify: opts.base.verify,
            runs: opts.base.runs,
            ..WorkloadConfig::paper_fidelity(1, 100)
        };
    }
    // JSON consumers want the profiles too, so any --json run collects
    // them when the build can record.
    opts.collect_telemetry = telemetry || json.is_some();
    if trace.is_none() && trace_json.is_some() {
        usage("--trace-json needs --trace");
    }
    if trace.is_none() && flame.is_some() {
        usage("--flame needs --trace");
    }
    Args {
        panels,
        opts,
        csv,
        json,
        telemetry,
        trace,
        trace_json,
        flame,
        obs,
    }
}

/// Prints the contention profiles of one panel's locks at the largest
/// swept thread count (the full per-point set goes in the JSON report).
fn print_panel_telemetry(result: &PanelResult) {
    let profiles: Vec<_> = result
        .series
        .iter()
        .filter_map(|s| s.profiles.last().cloned().flatten())
        .collect();
    println!(
        "-- telemetry at {} thread(s) --",
        result.thread_counts.last().copied().unwrap_or(0)
    );
    println!("{}", oll_telemetry::report::render_text(&profiles));
}

fn main() {
    let args = parse_args();
    if args.telemetry && !oll_telemetry::Telemetry::enabled() {
        eprintln!(
            "warning: this binary was built without the `telemetry` feature; \
             no profiles will be recorded. Rebuild with:\n  \
             cargo run -p oll-workloads --release --features telemetry --bin fig5 -- --telemetry"
        );
    }
    eprintln!(
        "fig5: {} panel(s), threads {:?}, {} acquisitions/thread (/10 at <=50% reads), {} run(s) averaged",
        args.panels.len(),
        args.opts.thread_counts,
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
    );
    if !args.opts.lock_options.is_default() {
        eprintln!(
            "fig5: lock options: adaptive={} biased={} hazard={} cohort={} self_tuning={} shape_threads={:?}",
            args.opts.lock_options.adaptive,
            args.opts.lock_options.biased,
            args.opts.lock_options.hazard,
            args.opts.lock_options.cohort,
            args.opts.lock_options.self_tuning,
            args.opts.lock_options.shape_threads,
        );
    }

    if args.trace.is_some() {
        traceio::warn_if_disabled("fig5");
    }
    if args.obs.on {
        obsio::warn_if_disabled("fig5");
    }
    let session = args.trace.as_ref().map(|_| TraceSession::begin());
    let obs_session = obsio::start(&args.obs, &mut |m| usage(m));

    let mut csv_body = String::new();
    let mut results = Vec::with_capacity(args.panels.len());
    let mut first = true;
    for &panel in &args.panels {
        eprintln!("== {} ==", panel.caption());
        let result = run_panel(panel, &args.opts);
        println!("{}", render_table(&result));
        if args.telemetry {
            print_panel_telemetry(&result);
        }
        csv_body.push_str(&render_csv(&result, first));
        first = false;
        results.push(result);
    }

    if let Some(path) = args.csv {
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(csv_body.as_bytes())
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.json {
        let doc = render_fig5_json(&results);
        let mut f = std::fs::File::create(&path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        f.write_all(b"\n")
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(session) = obs_session {
        let text = obsio::finish(session, args.obs.json.as_deref())
            .unwrap_or_else(|e| usage(&format!("cannot write obs report: {e}")));
        println!("-- obs --\n{text}");
    }
    if let (Some(path), Some(session)) = (&args.trace, session) {
        let tl = session.collect();
        let text =
            traceio::write_outputs(&tl, path, args.trace_json.as_deref(), args.flame.as_deref())
                .unwrap_or_else(|e| usage(&format!("cannot write trace: {e}")));
        println!("-- flight recorder --\n{text}");
        eprintln!("wrote {path}");
        if let Some(doc) = &args.trace_json {
            eprintln!("wrote {doc}");
        }
        if let Some(f) = &args.flame {
            eprintln!("wrote {f}");
        }
    }
}
