//! `fig5_tuned` — measure the self-tuning policy controller's effect.
//!
//! ```text
//! USAGE:
//!   fig5_tuned [--panels b,e,f] [--threads 1,2,4,8] [--acquisitions N]
//!              [--runs N] [--json PATH] [--merge PATH] [--quiet]
//! ```
//!
//! The ablation for `--self-tuning`: every selected Figure 5 point runs
//! twice, back to back — once bare, once under the
//! [`oll_core::SelfTuning`] online policy controller, whose sampled
//! read/write mix steers the lock's BRAVO bias, C-SNZI deflation,
//! backoff, and cohort-batch knobs while the point runs. Only the OLL
//! locks (GOLL/FOLL/ROLL) run: they are the locks with knobs to steer.
//!
//! The default panel set spans the regimes the controller classifies —
//! 99% reads (should settle read-heavy), 50% (mixed), and 0%
//! (write-heavy) — so the recorded deltas cover every arm of the
//! decision table, not just the flattering one. As in `fig5_cohort`,
//! the halves are paired per *run* — bare/tuned adjacent within every
//! repetition, the order alternating run to run — and every reported
//! delta is the **median of the paired per-run deltas**, so machine
//! drift or one throttled repetition cannot masquerade as a controller
//! effect. The bare/tuned rate columns are informational medians; the
//! deltas are what aggregate.
//!
//! The acceptance shape on a small box is "no meaningful regression":
//! short quick-mode points close only a handful of sampling windows, so
//! the measurement chiefly bounds the controller's overhead (its
//! fast-path cost is designed to be zero shared RMWs). Longer `--paper`
//! shaped runs give the steering itself time to pay.
//!
//! `--json` writes the comparison as a standalone `oll.fig5_tuned`
//! document; `--merge` folds it into an existing `oll.fig5` document
//! (the committed `BENCH_fig5.json`) as its top-level `"tuned"` member,
//! which `fig5check --expect-tuned` then validates.

use oll_telemetry::report::{json_escape, SCHEMA_VERSION};
use oll_workloads::config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
use oll_workloads::json::merge_member;
use oll_workloads::runner::run_throughput_profiled_with;
use oll_workloads::sweep::SweepOptions;
use std::io::Write as _;
use std::process::exit;

struct Args {
    panels: Vec<Fig5Panel>,
    opts: SweepOptions,
    json: Option<String>,
    merge: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5_tuned [--panels b,e,f] [--threads 1,2,4,8] [--acquisitions N]\n\
         \t[--runs N] [--json PATH] [--merge PATH] [--quiet]"
    );
    exit(2);
}

fn parse_args() -> Args {
    // One panel per controller regime: read-heavy, mixed, write-heavy.
    let mut panels = vec![Fig5Panel::B, Fig5Panel::E, Fig5Panel::F];
    let mut opts = SweepOptions::quick();
    opts.thread_counts = vec![1, 2, 4, 8];
    opts.locks = vec![LockKind::Goll, LockKind::Foll, LockKind::Roll];
    opts.progress = true;
    let mut json = None;
    let mut merge = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--panels" => {
                let v = value(i);
                i += 1;
                panels = v
                    .split(',')
                    .map(|p| {
                        Fig5Panel::parse(p)
                            .unwrap_or_else(|| usage(&format!("unknown panel `{p}`")))
                    })
                    .collect();
                if panels.is_empty() {
                    usage("--panels needs at least one panel");
                }
            }
            "--threads" => {
                let v = value(i);
                i += 1;
                opts.thread_counts = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| usage(&format!("bad thread count `{t}`")))
                    })
                    .collect();
                if opts.thread_counts.is_empty() {
                    usage("--threads needs at least one value");
                }
            }
            "--acquisitions" => {
                opts.base.acquisitions_per_thread = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--runs" => {
                opts.base.runs = value(i).parse().unwrap_or_else(|_| usage("bad --runs"));
                i += 1;
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--merge" => {
                merge = Some(value(i));
                i += 1;
            }
            "--quiet" => opts.progress = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Args {
        panels,
        opts,
        json,
        merge,
    }
}

/// Median: robust to outliers (a throttled repetition, or a pair whose
/// halves landed in different scheduling regimes) in a way the mean is
/// not.
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len();
    if n % 2 == 1 {
        samples[n / 2]
    } else {
        (samples[n / 2 - 1] + samples[n / 2]) / 2.0
    }
}

fn main() {
    let args = parse_args();
    let ranks = oll_util::topology::rank_count();
    eprintln!(
        "fig5_tuned: panels {:?} paired bare/tuned over threads {:?}, \
         {} acquisitions/thread (/10 at <=50% reads), {} run(s) averaged",
        args.panels.iter().map(|p| p.tag()).collect::<Vec<_>>(),
        args.opts.thread_counts,
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
    );

    let bare_options = args.opts.lock_options;
    let tuned_options = LockOptions {
        self_tuning: true,
        ..bare_options
    };
    let mut all_deltas = Vec::new();
    let mut rows = Vec::new();
    println!(
        "{:<13} {:>5} {:>14} {:>14} {:>10}",
        "lock", "panel", "bare acq/s", "tuned acq/s", "delta"
    );
    for (li, &kind) in args.opts.locks.iter().enumerate() {
        for (pi, &panel) in args.panels.iter().enumerate() {
            let read_pct = panel.read_pct();
            // The quick-config 10x split at <=50% reads, preserved under
            // an explicit --acquisitions the same way fig5 preserves it.
            let acquisitions = if read_pct > 50 {
                args.opts.base.acquisitions_per_thread
            } else {
                (args.opts.base.acquisitions_per_thread / 10).max(1)
            };
            let mut bare_rate = 0.0f64;
            let mut tuned_rate = 0.0f64;
            let mut pair_deltas = Vec::new();
            for (ti, &threads) in args.opts.thread_counts.iter().enumerate() {
                let config = WorkloadConfig {
                    threads,
                    read_pct,
                    acquisitions_per_thread: acquisitions,
                    runs: 1,
                    ..args.opts.base
                };
                let point = |opts: &LockOptions| {
                    run_throughput_profiled_with(kind, &config, opts)
                        .0
                        .acquires_per_sec
                };
                // Pair the halves per run, alternating which goes first,
                // so warmup and drift bias neither side; aggregate the
                // per-pair deltas, not the rates (see fig5_cohort).
                let runs = args.opts.base.runs.max(1);
                let mut bares = Vec::with_capacity(runs);
                let mut tuneds = Vec::with_capacity(runs);
                let mut deltas = Vec::with_capacity(runs);
                for r in 0..runs {
                    let (bare, tuned) = if (li + pi + ti + r) % 2 == 0 {
                        let bare = point(&bare_options);
                        (bare, point(&tuned_options))
                    } else {
                        let tuned = point(&tuned_options);
                        (point(&bare_options), tuned)
                    };
                    bares.push(bare);
                    tuneds.push(tuned);
                    deltas.push((tuned - bare) / bare * 100.0);
                }
                let (bare, tuned) = (median(&mut bares), median(&mut tuneds));
                let point_delta = median(&mut deltas);
                if args.opts.progress {
                    eprintln!(
                        "  {:<13} panel={} threads={:<3} -> bare {bare:>12.0} / tuned \
                         {tuned:>12.0} acquires/s ({point_delta:+.2}%)",
                        kind.name(),
                        panel.tag(),
                        threads,
                    );
                }
                bare_rate += bare;
                tuned_rate += tuned;
                pair_deltas.extend_from_slice(&deltas);
                all_deltas.extend_from_slice(&deltas);
            }
            let n = args.opts.thread_counts.len().max(1) as f64;
            bare_rate /= n;
            tuned_rate /= n;
            let delta_pct = median(&mut pair_deltas);
            println!(
                "{:<13} {:>5} {:>14.0} {:>14.0} {:>+9.2}%",
                kind.name(),
                panel.tag(),
                bare_rate,
                tuned_rate,
                delta_pct
            );
            rows.push(format!(
                "{{\"lock\":\"{}\",\"panel\":\"{}\",\
                 \"bare_acquires_per_sec\":{bare_rate:.1},\
                 \"tuned_acquires_per_sec\":{tuned_rate:.1},\"delta_pct\":{delta_pct:.3}}}",
                json_escape(kind.name()),
                panel.tag(),
            ));
        }
    }
    let overall_delta_pct = median(&mut all_deltas);
    println!(
        "overall: {overall_delta_pct:+.2}% self-tuning throughput delta \
         (median of paired run deltas)",
    );

    let panels_list = args
        .panels
        .iter()
        .map(|p| format!("\"{}\"", p.tag()))
        .collect::<Vec<_>>()
        .join(",");
    let threads_list = args
        .opts
        .thread_counts
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"schema\":\"oll.fig5_tuned\",\"version\":{SCHEMA_VERSION},\"ranks\":{ranks},\
         \"panels\":[{panels_list}],\"threads\":[{threads_list}],\
         \"acquisitions_per_thread\":{},\"runs\":{},\
         \"locks\":[{}],\"overall_delta_pct\":{overall_delta_pct:.3}}}",
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
        rows.join(","),
    );

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.merge {
        let base = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
        let merged = merge_member(&base, "tuned", &doc)
            .unwrap_or_else(|e| usage(&format!("{path}: cannot merge: {e}")));
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(merged.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("merged tuned panel into {path}");
    }
}
