//! `fig5_obs` — measure the continuous-monitoring sampler's overhead.
//!
//! ```text
//! USAGE:
//!   fig5_obs [--threads 1,2,4,8] [--acquisitions N] [--runs N]
//!            [--interval-ms N] [--json PATH] [--merge PATH] [--quiet]
//! ```
//!
//! Runs every Figure 5(b) point (99% reads — the contended read-mostly
//! mix where a background observer is most likely to perturb the read
//! fast path) twice, back to back: once bare, once with the `oll-obs`
//! sampler daemon ticking at `--interval-ms` (default 100 ms, the
//! production cadence). Pairing the two measurements per point — and
//! alternating which of the pair runs first — cancels machine drift
//! that a sweep-then-sweep comparison would absorb as phantom overhead.
//! The per-lock throughput ratio between the paired measurements is the
//! sampler's measured overhead; the acceptance target recorded in
//! `BENCH_fig5.json` is an overall degradation under 2%.
//!
//! `--json` writes the comparison as a standalone `oll.fig5_obs`
//! document; `--merge` folds it into an existing `oll.fig5` document
//! (the committed `BENCH_fig5.json`) as its top-level `"obs"` member,
//! which `fig5check --expect-obs` then validates. A build without the
//! `obs` feature still runs both passes but records `sampler_active:
//! false` (nothing was sampling), which `--expect-obs` rejects.

use oll_obs::{Sampler, SamplerConfig};
use oll_telemetry::report::{json_escape, SCHEMA_VERSION};
use oll_workloads::config::{Fig5Panel, WorkloadConfig};
use oll_workloads::json::merge_member;
use oll_workloads::obsio;
use oll_workloads::runner::run_throughput_profiled_with;
use oll_workloads::sweep::SweepOptions;
use std::io::Write as _;
use std::process::exit;
use std::time::Duration;

struct Args {
    opts: SweepOptions,
    interval_ms: u64,
    json: Option<String>,
    merge: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5_obs [--threads 1,2,4,8] [--acquisitions N] [--runs N]\n\
         \t[--interval-ms N] [--json PATH] [--merge PATH] [--quiet]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut opts = SweepOptions::quick();
    opts.thread_counts = vec![1, 2, 4, 8];
    opts.progress = true;
    let mut interval_ms = 100u64;
    let mut json = None;
    let mut merge = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--threads" => {
                let v = value(i);
                i += 1;
                opts.thread_counts = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| usage(&format!("bad thread count `{t}`")))
                    })
                    .collect();
                if opts.thread_counts.is_empty() {
                    usage("--threads needs at least one value");
                }
            }
            "--acquisitions" => {
                opts.base.acquisitions_per_thread = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--runs" => {
                opts.base.runs = value(i).parse().unwrap_or_else(|_| usage("bad --runs"));
                i += 1;
            }
            "--interval-ms" => {
                interval_ms = value(i)
                    .parse()
                    .ok()
                    .filter(|ms| *ms > 0)
                    .unwrap_or_else(|| usage("bad --interval-ms"));
                i += 1;
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--merge" => {
                merge = Some(value(i));
                i += 1;
            }
            "--quiet" => opts.progress = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Args {
        opts,
        interval_ms,
        json,
        merge,
    }
}

fn main() {
    let args = parse_args();
    if !oll_obs::enabled() {
        obsio::warn_if_disabled("fig5_obs");
    }
    let read_pct = Fig5Panel::B.read_pct();
    eprintln!(
        "fig5_obs: panel b points paired off/on over threads {:?}, \
         {} acquisitions/thread, {} run(s) averaged; sampler at {}ms",
        args.opts.thread_counts,
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
        args.interval_ms,
    );

    let sampler_config = SamplerConfig {
        interval: Duration::from_millis(args.interval_ms),
        ..SamplerConfig::default()
    };
    let mut sampler_active = false;
    let mut samples = 0u64;
    let mut windows_evicted = 0u64;
    let mut sum_off = 0.0f64;
    let mut sum_on = 0.0f64;
    let mut rows = Vec::with_capacity(args.opts.locks.len());
    println!(
        "{:<13} {:>14} {:>14} {:>10}",
        "lock", "off acq/s", "on acq/s", "overhead"
    );
    for (li, &kind) in args.opts.locks.iter().enumerate() {
        let mut off_rate = 0.0f64;
        let mut on_rate = 0.0f64;
        for (ti, &threads) in args.opts.thread_counts.iter().enumerate() {
            let config = WorkloadConfig {
                threads,
                read_pct,
                ..args.opts.base
            };
            let point = || run_throughput_profiled_with(kind, &config, &args.opts.lock_options).0;
            let sampled_point = || {
                let sampler = Sampler::start(sampler_config.clone());
                let active = sampler.is_active();
                let r = run_throughput_profiled_with(kind, &config, &args.opts.lock_options).0;
                let state = sampler.stop();
                (r, active, state.samples, state.windows_evicted)
            };
            // Alternate which half of the pair runs first, so warmup
            // and drift bias neither side.
            let (off, (on, active, s, w)) = if (li + ti) % 2 == 0 {
                (point(), sampled_point())
            } else {
                let on = sampled_point();
                (point(), on)
            };
            sampler_active |= active;
            samples += s;
            windows_evicted += w;
            if args.opts.progress {
                eprintln!(
                    "  {:<13} threads={:<3} -> off {:>12.0} / on {:>12.0} acquires/s",
                    kind.name(),
                    threads,
                    off.acquires_per_sec,
                    on.acquires_per_sec,
                );
            }
            off_rate += off.acquires_per_sec;
            on_rate += on.acquires_per_sec;
        }
        let n = args.opts.thread_counts.len().max(1) as f64;
        off_rate /= n;
        on_rate /= n;
        sum_off += off_rate;
        sum_on += on_rate;
        let overhead_pct = (off_rate - on_rate) / off_rate * 100.0;
        println!(
            "{:<13} {:>14.0} {:>14.0} {:>9.2}%",
            kind.name(),
            off_rate,
            on_rate,
            overhead_pct
        );
        rows.push(format!(
            "{{\"lock\":\"{}\",\"off_acquires_per_sec\":{off_rate:.1},\
             \"on_acquires_per_sec\":{on_rate:.1},\"overhead_pct\":{overhead_pct:.3}}}",
            json_escape(kind.name())
        ));
    }
    let overall_overhead_pct = (sum_off - sum_on) / sum_off * 100.0;
    println!(
        "overall: {overall_overhead_pct:.2}% sampler overhead ({samples} sample(s) taken, active={sampler_active})",
    );

    let threads_list = args
        .opts
        .thread_counts
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"schema\":\"oll.fig5_obs\",\"version\":{SCHEMA_VERSION},\
         \"interval_ms\":{},\"panel\":\"{}\",\"threads\":[{threads_list}],\
         \"acquisitions_per_thread\":{},\"runs\":{},\"samples\":{},\
         \"windows_evicted\":{},\"sampler_active\":{},\"locks\":[{}],\
         \"overall_overhead_pct\":{overall_overhead_pct:.3}}}",
        args.interval_ms,
        Fig5Panel::B.tag(),
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
        samples,
        windows_evicted,
        sampler_active,
        rows.join(","),
    );

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.merge {
        let base = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
        let merged = merge_member(&base, "obs", &doc)
            .unwrap_or_else(|e| usage(&format!("{path}: cannot merge: {e}")));
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(merged.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("merged obs panel into {path}");
    }
}
