//! `fig5_async` — the async-lock counterpart of `fig5`: mass *task*
//! contention on a bounded worker pool.
//!
//! ```text
//! USAGE:
//!   fig5_async [--tasks N] [--workers N] [--write-pct P] [--cancel-pct P]
//!              [--deadline-ms N] [--seed N]
//!              [--json PATH] [--merge PATH] [--telemetry] [--quiet]
//!              [--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]
//! ```
//!
//! Spawns `--tasks` futures that each acquire an
//! `oll_async::AsyncRwLock` (a `--write-pct` slice as writers, a
//! `--cancel-pct` slice with a deadline so timeouts exercise the
//! tombstone-cancellation path) on `--workers` OS threads, behind a
//! write-lock gate so the whole backlog queues before the grant cascade
//! starts. The headline configuration — one million tasks on eight
//! workers — is what `regen_results.sh` records:
//!
//! ```sh
//! cargo run -p oll-workloads --release --features async --bin fig5_async -- \
//!     --tasks 1000000 --workers 8 --merge BENCH_fig5.json
//! ```
//!
//! `--json` writes the run as a standalone `oll.fig5_async` document;
//! `--merge` folds it into an existing `oll.fig5` document (the
//! committed `BENCH_fig5.json`) as its top-level `"async"` member.
//! The binary exits nonzero if the run leaks state: every task must end
//! granted or timed out, and the C-SNZI surplus and wait queue must
//! both be zero at exit.

use oll_workloads::async_bench::{
    render_async_text, render_fig5_async_json, run_async_bench, AsyncBenchConfig,
};
use oll_workloads::json::merge_member;
use oll_workloads::obsio::{self, ObsArgs};
use std::io::Write as _;
use std::process::exit;

struct Args {
    config: AsyncBenchConfig,
    json: Option<String>,
    merge: Option<String>,
    telemetry: bool,
    quiet: bool,
    obs: ObsArgs,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5_async [--tasks N] [--workers N] [--write-pct P]\n\
         \t[--cancel-pct P] [--deadline-ms N] [--seed N]\n\
         \t[--json PATH] [--merge PATH] [--telemetry] [--quiet]\n\
         \t[--obs [ADDR]] [--obs-json PATH] [--obs-interval-ms N]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut config = AsyncBenchConfig {
        tasks: 100_000,
        workers: 8,
        ..AsyncBenchConfig::quick()
    };
    let mut json = None;
    let mut merge = None;
    let mut telemetry = false;
    let mut quiet = false;
    let mut obs = ObsArgs::default();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        if obsio::parse_flag(&argv, &mut i, &mut obs, &mut |m| usage(m)) {
            i += 1;
            continue;
        }
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--tasks" => {
                config.tasks = value(i).parse().unwrap_or_else(|_| usage("bad --tasks"));
                i += 1;
            }
            "--workers" => {
                config.workers = value(i).parse().unwrap_or_else(|_| usage("bad --workers"));
                if config.workers == 0 {
                    usage("--workers needs at least one thread");
                }
                i += 1;
            }
            "--write-pct" => {
                config.write_pct = value(i)
                    .parse()
                    .ok()
                    .filter(|p| *p <= 100)
                    .unwrap_or_else(|| usage("bad --write-pct"));
                i += 1;
            }
            "--cancel-pct" => {
                config.cancel_pct = value(i)
                    .parse()
                    .ok()
                    .filter(|p| *p <= 100)
                    .unwrap_or_else(|| usage("bad --cancel-pct"));
                i += 1;
            }
            "--deadline-ms" => {
                config.deadline_ms = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --deadline-ms"));
                i += 1;
            }
            "--seed" => {
                config.seed = value(i).parse().unwrap_or_else(|_| usage("bad --seed"));
                i += 1;
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--merge" => {
                merge = Some(value(i));
                i += 1;
            }
            "--telemetry" => telemetry = true,
            "--quiet" => quiet = true,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Args {
        config,
        json,
        merge,
        telemetry,
        quiet,
        obs,
    }
}

fn main() {
    let args = parse_args();
    if args.telemetry && !oll_telemetry::Telemetry::enabled() {
        eprintln!(
            "warning: this binary was built without the `telemetry` feature; \
             no profiles will be recorded. Rebuild with:\n  \
             cargo run -p oll-workloads --release --features async,telemetry \
             --bin fig5_async -- --telemetry"
        );
    }
    if !args.quiet {
        eprintln!(
            "fig5_async: {} task(s) on {} worker(s), {}% writes, {}% with a {}ms deadline",
            args.config.tasks,
            args.config.workers,
            args.config.write_pct,
            args.config.cancel_pct,
            args.config.deadline_ms,
        );
    }
    if args.obs.on {
        obsio::warn_if_disabled("fig5_async");
    }
    let obs_session = obsio::start(&args.obs, &mut |m| usage(m));

    let result = run_async_bench(&args.config);
    println!("{}", render_async_text(&result));
    if let Some(session) = obs_session {
        let text = obsio::finish(session, args.obs.json.as_deref())
            .unwrap_or_else(|e| usage(&format!("cannot write obs report: {e}")));
        println!("-- obs --\n{text}");
    }
    if args.telemetry {
        if let Some(profile) = &result.telemetry {
            println!(
                "{}",
                oll_telemetry::report::render_text(std::slice::from_ref(profile))
            );
        }
    }

    let doc = render_fig5_async_json(&result);
    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.merge {
        let base = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
        let merged = merge_member(&base, "async", &doc)
            .unwrap_or_else(|e| usage(&format!("{path}: cannot merge: {e}")));
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(merged.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("merged async panel into {path}");
    }

    if !result.clean_exit() {
        eprintln!(
            "fig5_async: FAIL: leaked exit state: {}+{}+{} of {} task(s), \
             surplus={}, queued={}",
            result.granted_reads,
            result.granted_writes,
            result.timed_out,
            result.config.tasks,
            result.surplus_at_exit,
            result.queued_at_exit,
        );
        exit(1);
    }
}
