//! `fig5_cohort` — measure the NUMA cohort writer gate's effect.
//!
//! ```text
//! USAGE:
//!   fig5_cohort [--threads 1,2,4,8] [--acquisitions N] [--runs N]
//!               [--json PATH] [--merge PATH] [--quiet]
//! ```
//!
//! Runs every Figure 5(f) point (0% reads — the pure-writer mix where
//! the cohort gate's batched same-socket hand-off is the entire story)
//! twice, back to back: once with the plain global writer queue, once
//! with the cohort gate (`--cohort`'s per-socket writer queues,
//! `DEFAULT_COHORT_BATCH` local grants before a forced cross-node
//! release). The halves are paired per *run* — off/on adjacent within
//! every repetition, the order alternating run to run — and every
//! reported delta is the **median of the paired per-run deltas**, so
//! machine drift between the halves, one throttled repetition, or a
//! pair whose halves straddled a scheduling-regime flip (oversubscribed
//! single-CPU boxes are bistable between uncontended and convoyed
//! execution) cannot masquerade as a delta. The off/on rate columns are
//! informational medians; the deltas are what aggregate. Only FOLL and
//! ROLL run: they are the locks that grew the gate.
//!
//! On single-socket hardware the detected topology collapses to one
//! rank, so every hand-off is local and the measurement bounds the
//! gate's bookkeeping overhead (the acceptance target recorded in
//! `BENCH_fig5.json`: no meaningful regression). On a multi-socket
//! box the same pairing shows the batching win and the recorded
//! `ranks` field says how many cohorts were in play.
//!
//! `--json` writes the comparison as a standalone `oll.fig5_cohort`
//! document; `--merge` folds it into an existing `oll.fig5` document
//! (the committed `BENCH_fig5.json`) as its top-level `"cohort"`
//! member, which `fig5check --expect-cohort` then validates.

use oll_core::DEFAULT_COHORT_BATCH;
use oll_telemetry::report::{json_escape, SCHEMA_VERSION};
use oll_workloads::config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
use oll_workloads::json::merge_member;
use oll_workloads::runner::run_throughput_profiled_with;
use oll_workloads::sweep::SweepOptions;
use std::io::Write as _;
use std::process::exit;

struct Args {
    opts: SweepOptions,
    json: Option<String>,
    merge: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: fig5_cohort [--threads 1,2,4,8] [--acquisitions N] [--runs N]\n\
         \t[--json PATH] [--merge PATH] [--quiet]"
    );
    exit(2);
}

fn parse_args() -> Args {
    let mut opts = SweepOptions::quick();
    opts.thread_counts = vec![1, 2, 4, 8];
    opts.locks = vec![LockKind::Foll, LockKind::Roll];
    opts.progress = true;
    let mut json = None;
    let mut merge = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| usage("missing value for flag"))
                .clone()
        };
        match argv[i].as_str() {
            "--threads" => {
                let v = value(i);
                i += 1;
                opts.thread_counts = v
                    .split(',')
                    .map(|t| {
                        t.trim()
                            .parse::<usize>()
                            .unwrap_or_else(|_| usage(&format!("bad thread count `{t}`")))
                    })
                    .collect();
                if opts.thread_counts.is_empty() {
                    usage("--threads needs at least one value");
                }
            }
            "--acquisitions" => {
                opts.base.acquisitions_per_thread = value(i)
                    .parse()
                    .unwrap_or_else(|_| usage("bad --acquisitions"));
                i += 1;
            }
            "--runs" => {
                opts.base.runs = value(i).parse().unwrap_or_else(|_| usage("bad --runs"));
                i += 1;
            }
            "--json" => {
                json = Some(value(i));
                i += 1;
            }
            "--merge" => {
                merge = Some(value(i));
                i += 1;
            }
            "--quiet" => opts.progress = false,
            "--help" | "-h" => usage("help requested"),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    Args { opts, json, merge }
}

fn main() {
    let args = parse_args();
    let read_pct = Fig5Panel::F.read_pct();
    let ranks = oll_util::topology::rank_count();
    eprintln!(
        "fig5_cohort: panel f points paired off/on over threads {:?}, \
         {} acquisitions/thread, {} run(s) averaged; {} locality rank(s), batch {}",
        args.opts.thread_counts,
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
        ranks,
        DEFAULT_COHORT_BATCH,
    );

    let off_options = args.opts.lock_options;
    let on_options = LockOptions {
        cohort: true,
        ..off_options
    };
    /// Median: robust to outliers (a throttled repetition, or a pair
    /// whose halves landed in different scheduling regimes) in a way the
    /// mean is not.
    fn median(samples: &mut [f64]) -> f64 {
        samples.sort_by(|a, b| a.total_cmp(b));
        let n = samples.len();
        if n % 2 == 1 {
            samples[n / 2]
        } else {
            (samples[n / 2 - 1] + samples[n / 2]) / 2.0
        }
    }
    let mut all_deltas = Vec::new();
    let mut rows = Vec::with_capacity(args.opts.locks.len());
    println!(
        "{:<13} {:>14} {:>14} {:>10}",
        "lock", "off acq/s", "on acq/s", "delta"
    );
    for (li, &kind) in args.opts.locks.iter().enumerate() {
        let mut off_rate = 0.0f64;
        let mut on_rate = 0.0f64;
        let mut lock_deltas = Vec::new();
        for (ti, &threads) in args.opts.thread_counts.iter().enumerate() {
            let config = WorkloadConfig {
                threads,
                read_pct,
                runs: 1,
                ..args.opts.base
            };
            let point = |opts: &LockOptions| {
                run_throughput_profiled_with(kind, &config, opts)
                    .0
                    .acquires_per_sec
            };
            // Pair the halves per run, alternating which goes first, so
            // warmup and drift bias neither side. The per-pair deltas —
            // not the rates — are what aggregates: a pair whose halves
            // landed in the same scheduling regime yields an honest
            // ratio, and the medians discard the occasional pair that
            // straddled a regime flip (an oversubscribed 1-CPU box is
            // bistable between "every acquisition uncontended" and a
            // convoy of queued waiters; mean-of-rates lets one such
            // flip masquerade as a 100x delta).
            let runs = args.opts.base.runs.max(1);
            let mut offs = Vec::with_capacity(runs);
            let mut ons = Vec::with_capacity(runs);
            let mut deltas = Vec::with_capacity(runs);
            for r in 0..runs {
                let (off, on) = if (li + ti + r) % 2 == 0 {
                    let off = point(&off_options);
                    (off, point(&on_options))
                } else {
                    let on = point(&on_options);
                    (point(&off_options), on)
                };
                offs.push(off);
                ons.push(on);
                deltas.push((on - off) / off * 100.0);
            }
            let (off, on) = (median(&mut offs), median(&mut ons));
            let point_delta = median(&mut deltas);
            if args.opts.progress {
                eprintln!(
                    "  {:<13} threads={:<3} -> off {off:>12.0} / on {on:>12.0} acquires/s \
                     ({point_delta:+.2}%)",
                    kind.name(),
                    threads,
                );
            }
            off_rate += off;
            on_rate += on;
            lock_deltas.extend_from_slice(&deltas);
            all_deltas.extend_from_slice(&deltas);
        }
        let n = args.opts.thread_counts.len().max(1) as f64;
        off_rate /= n;
        on_rate /= n;
        let delta_pct = median(&mut lock_deltas);
        println!(
            "{:<13} {:>14.0} {:>14.0} {:>+9.2}%",
            kind.name(),
            off_rate,
            on_rate,
            delta_pct
        );
        rows.push(format!(
            "{{\"lock\":\"{}\",\"off_acquires_per_sec\":{off_rate:.1},\
             \"on_acquires_per_sec\":{on_rate:.1},\"delta_pct\":{delta_pct:.3}}}",
            json_escape(kind.name())
        ));
    }
    let overall_delta_pct = median(&mut all_deltas);
    println!(
        "overall: {overall_delta_pct:+.2}% cohort-gate throughput delta \
         (median of paired run deltas, {ranks} locality rank(s))",
    );

    let threads_list = args
        .opts
        .thread_counts
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let doc = format!(
        "{{\"schema\":\"oll.fig5_cohort\",\"version\":{SCHEMA_VERSION},\
         \"panel\":\"{}\",\"ranks\":{ranks},\"batch\":{DEFAULT_COHORT_BATCH},\
         \"threads\":[{threads_list}],\"acquisitions_per_thread\":{},\"runs\":{},\
         \"locks\":[{}],\"overall_delta_pct\":{overall_delta_pct:.3}}}",
        Fig5Panel::F.tag(),
        args.opts.base.acquisitions_per_thread,
        args.opts.base.runs,
        rows.join(","),
    );

    if let Some(path) = &args.json {
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(doc.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.merge {
        let base = std::fs::read_to_string(path)
            .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
        let merged = merge_member(&base, "cohort", &doc)
            .unwrap_or_else(|e| usage(&format!("{path}: cannot merge: {e}")));
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| usage(&format!("cannot create {path}: {e}")));
        f.write_all(merged.as_bytes())
            .and_then(|()| f.write_all(b"\n"))
            .unwrap_or_else(|e| usage(&format!("cannot write {path}: {e}")));
        eprintln!("merged cohort panel into {path}");
    }
}
