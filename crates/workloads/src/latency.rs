//! Per-acquisition latency distributions.
//!
//! Figure 5 reports throughput; a production lock also needs tail-latency
//! visibility (how long can one `lock_read`/`lock_write` stall?). This
//! module measures per-operation acquisition latency into log-scaled
//! histograms and reports percentiles — the `latency` binary drives it.
//!
//! The histogram is a fixed 64-bucket log2 layout (1 ns … ~9 s), so
//! recording is two instructions and merging across threads is a vector
//! add; no allocation happens on the measured path.

use crate::config::{LockKind, LockOptions, WorkloadConfig};
use oll_baselines::{
    CentralizedRwLock, KsuhLock, McsMutex, McsRwLock, McsRwReaderPref, McsRwWriterPref,
    PerThreadRwLock, SolarisLikeRwLock, StdRwLock,
};
use oll_core::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily};
use oll_hazard::PoisonPolicy;
use oll_telemetry::LockSnapshot;
use oll_util::XorShift64;
use std::sync::Barrier;
use std::time::Instant;

const BUCKETS: usize = 64;

/// A log2-bucketed latency histogram (nanoseconds).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    total: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [0; BUCKETS],
            total: 0,
            max_ns: 0,
        }
    }

    #[inline]
    fn bucket_for(ns: u64) -> usize {
        // bucket = floor(log2(ns)) with ns=0 mapping to bucket 0.
        (64 - ns.max(1).leading_zeros() as usize - 1).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[Self::bucket_for(ns)] += 1;
        self.total += 1;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Summarizes this histogram into the fixed percentile set the
    /// reports carry.
    pub fn summarize(&self) -> LatencySummary {
        LatencySummary::from(self)
    }

    /// Approximate percentile (upper bound of the bucket containing it),
    /// in nanoseconds. `p` in [0, 1].
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as f64) * p.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i: 2^(i+1) - 1.
                return (1u64 << (i + 1)).saturating_sub(1).min(self.max_ns.max(1));
            }
        }
        self.max_ns
    }
}

/// Latency percentiles for one operation class.
#[derive(Debug, Clone, Copy)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median (bucket upper bound), ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
    /// Maximum, ns.
    pub max_ns: u64,
}

impl LatencySummary {
    fn from(h: &LatencyHistogram) -> Self {
        Self {
            count: h.count(),
            p50_ns: h.percentile_ns(0.50),
            p99_ns: h.percentile_ns(0.99),
            p999_ns: h.percentile_ns(0.999),
            max_ns: h.max_ns(),
        }
    }
}

/// Read- and write-acquisition latency for one lock/workload.
#[derive(Debug, Clone, Copy)]
pub struct LatencyResult {
    /// The lock measured.
    pub kind: LockKind,
    /// Threads used.
    pub threads: usize,
    /// Read percentage used.
    pub read_pct: u32,
    /// Read-acquisition (`lock_read`) latency.
    pub read: LatencySummary,
    /// Write-acquisition (`lock_write`) latency.
    pub write: LatencySummary,
}

fn measure_latency<L, F>(
    make_lock: F,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (LatencyHistogram, LatencyHistogram, Option<LockSnapshot>)
where
    L: RwLockFamily,
    F: Fn(usize) -> L,
{
    let lock = make_lock(config.threads);
    if opts.hazard {
        let h = lock.hazard();
        h.set_poison_policy(PoisonPolicy::Poison);
        h.detect_deadlocks(true);
    }
    let barrier = Barrier::new(config.threads);
    let merged: std::sync::Mutex<(LatencyHistogram, LatencyHistogram)> =
        std::sync::Mutex::new((LatencyHistogram::new(), LatencyHistogram::new()));

    std::thread::scope(|scope| {
        for tid in 0..config.threads {
            let lock = &lock;
            let barrier = &barrier;
            let merged = &merged;
            scope.spawn(move || {
                let mut handle = lock.handle().expect("capacity sized to thread count");
                let mut rng = XorShift64::for_thread(config.seed, tid);
                let mut reads = LatencyHistogram::new();
                let mut writes = LatencyHistogram::new();
                barrier.wait();
                for _ in 0..config.acquisitions_per_thread {
                    if rng.percent(config.read_pct) {
                        let t0 = Instant::now();
                        handle.lock_read();
                        reads.record(t0.elapsed().as_nanos() as u64);
                        handle.unlock_read();
                    } else {
                        let t0 = Instant::now();
                        handle.lock_write();
                        writes.record(t0.elapsed().as_nanos() as u64);
                        handle.unlock_write();
                    }
                }
                let mut m = merged.lock().unwrap();
                m.0.merge(&reads);
                m.1.merge(&writes);
            });
        }
    });
    let snap = lock.telemetry().snapshot();
    let (reads, writes) = merged.into_inner().unwrap();
    (reads, writes, snap)
}

/// Measures acquisition-latency distributions for `kind` under `config`.
pub fn run_latency(kind: LockKind, config: &WorkloadConfig) -> LatencyResult {
    run_latency_profiled(kind, config).0
}

/// Like [`run_latency`], additionally returning the lock's telemetry
/// profile for the run (`None` unless built with the `telemetry`
/// feature and the lock is instrumented).
pub fn run_latency_profiled(
    kind: LockKind,
    config: &WorkloadConfig,
) -> (LatencyResult, Option<LockSnapshot>) {
    run_latency_profiled_with(kind, config, &LockOptions::default())
}

/// [`measure_latency`] with the `self_tuning` option applied: when set,
/// the OLL lock under test runs beneath the `SelfTuning` controller.
fn measure_latency_tuned<L, F>(
    make_lock: F,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (LatencyHistogram, LatencyHistogram, Option<LockSnapshot>)
where
    L: RwLockFamily,
    F: Fn(usize) -> L,
{
    if opts.self_tuning {
        measure_latency(
            |cap| oll_core::SelfTuning::new(make_lock(cap)),
            config,
            opts,
        )
    } else {
        measure_latency(make_lock, config, opts)
    }
}

/// Like [`run_latency_profiled`], applying `opts` when constructing the
/// OLL locks (BRAVO biasing, adaptive C-SNZIs). Baselines ignore `opts`.
pub fn run_latency_profiled_with(
    kind: LockKind,
    config: &WorkloadConfig,
    opts: &LockOptions,
) -> (LatencyResult, Option<LockSnapshot>) {
    let (reads, writes, mut profile) = match kind {
        LockKind::Goll if opts.biased => measure_latency_tuned(
            |cap| {
                GollLock::builder(cap)
                    .adaptive(opts.adaptive)
                    .biased(true)
                    .build_biased()
            },
            config,
            opts,
        ),
        LockKind::Foll if opts.biased => measure_latency_tuned(
            |cap| {
                FollLock::builder(cap)
                    .adaptive(opts.adaptive)
                    .cohort(opts.cohort)
                    .biased(true)
                    .build_biased()
            },
            config,
            opts,
        ),
        LockKind::Roll if opts.biased => measure_latency_tuned(
            |cap| {
                RollLock::builder(cap)
                    .adaptive(opts.adaptive)
                    .cohort(opts.cohort)
                    .biased(true)
                    .build_biased()
            },
            config,
            opts,
        ),
        LockKind::Goll if opts.adaptive => measure_latency_tuned(
            |cap| GollLock::builder(cap).adaptive(true).build(),
            config,
            opts,
        ),
        LockKind::Foll if opts.adaptive || opts.cohort => measure_latency_tuned(
            |cap| {
                FollLock::builder(cap)
                    .adaptive(opts.adaptive)
                    .cohort(opts.cohort)
                    .build()
            },
            config,
            opts,
        ),
        LockKind::Roll if opts.adaptive || opts.cohort => measure_latency_tuned(
            |cap| {
                RollLock::builder(cap)
                    .adaptive(opts.adaptive)
                    .cohort(opts.cohort)
                    .build()
            },
            config,
            opts,
        ),
        LockKind::Goll => measure_latency_tuned(GollLock::new, config, opts),
        LockKind::Foll => measure_latency_tuned(FollLock::new, config, opts),
        LockKind::Roll => measure_latency_tuned(RollLock::new, config, opts),
        LockKind::Ksuh => measure_latency(KsuhLock::new, config, opts),
        LockKind::SolarisLike => measure_latency(SolarisLikeRwLock::new, config, opts),
        LockKind::Centralized => measure_latency(CentralizedRwLock::new, config, opts),
        LockKind::McsRw => measure_latency(McsRwLock::new, config, opts),
        LockKind::McsRwReaderPref => measure_latency(McsRwReaderPref::new, config, opts),
        LockKind::McsRwWriterPref => measure_latency(McsRwWriterPref::new, config, opts),
        LockKind::PerThread => measure_latency(PerThreadRwLock::new, config, opts),
        LockKind::StdRw => measure_latency(StdRwLock::new, config, opts),
        LockKind::McsMutex => measure_latency(McsMutex::new, config, opts),
    };
    if let Some(p) = &mut profile {
        p.name = format!("{} t={}", kind.name(), config.threads);
    }
    (
        LatencyResult {
            kind,
            threads: config.threads,
            read_pct: config.read_pct,
            read: LatencySummary::from(&reads),
            write: LatencySummary::from(&writes),
        },
        profile,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(LatencyHistogram::bucket_for(0), 0);
        assert_eq!(LatencyHistogram::bucket_for(1), 0);
        assert_eq!(LatencyHistogram::bucket_for(2), 1);
        assert_eq!(LatencyHistogram::bucket_for(3), 1);
        assert_eq!(LatencyHistogram::bucket_for(4), 2);
        assert_eq!(LatencyHistogram::bucket_for(1023), 9);
        assert_eq!(LatencyHistogram::bucket_for(1024), 10);
        assert_eq!(LatencyHistogram::bucket_for(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let mut h = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 100, 1_000, 10_000, 100_000] {
            h.record(ns);
        }
        let p50 = h.percentile_ns(0.5);
        let p99 = h.percentile_ns(0.99);
        assert!(p50 <= p99);
        assert!(p99 <= h.max_ns());
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_ns(0.5), 0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.max_ns(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(5);
        b.record(500);
        b.record(5_000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max_ns(), 5_000);
    }

    #[test]
    fn median_lands_in_right_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record(100); // bucket 6 (64..128)
        }
        h.record(1_000_000);
        let p50 = h.percentile_ns(0.50);
        assert!((100..256).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn end_to_end_latency_run() {
        let config = WorkloadConfig {
            threads: 2,
            read_pct: 80,
            acquisitions_per_thread: 500,
            critical_work: 0,
            outside_work: 0,
            seed: 7,
            runs: 1,
            verify: false,
        };
        for kind in [LockKind::Foll, LockKind::SolarisLike] {
            let r = run_latency(kind, &config);
            assert_eq!(r.read.count + r.write.count, 1_000);
            assert!(r.read.count > r.write.count, "80% reads");
            assert!(r.read.p50_ns <= r.read.p99_ns);
            assert!(r.read.p99_ns <= r.read.p999_ns.max(r.read.max_ns));
        }
    }

    #[test]
    fn biased_latency_run_counts_every_acquisition() {
        let config = WorkloadConfig {
            threads: 2,
            read_pct: 80,
            acquisitions_per_thread: 500,
            critical_work: 0,
            outside_work: 0,
            seed: 7,
            runs: 1,
            verify: false,
        };
        let opts = LockOptions {
            biased: true,
            ..LockOptions::default()
        };
        for kind in [LockKind::Goll, LockKind::Foll, LockKind::Roll] {
            let (r, _) = run_latency_profiled_with(kind, &config, &opts);
            assert_eq!(r.read.count + r.write.count, 1_000, "{}", kind.name());
        }
    }
}
