//! Workload configuration, mirroring the paper's methodology (§5.1).

/// Which lock algorithm a workload drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LockKind {
    /// The general OLL lock (§3.2).
    Goll,
    /// The FIFO OLL lock (§4.2).
    Foll,
    /// The reader-preference OLL lock (§4.3).
    Roll,
    /// Krieger et al.'s doubly-linked queue lock.
    Ksuh,
    /// The Solaris-kernel-style central-lockword lock.
    SolarisLike,
    /// The naive single-CAS-word lock.
    Centralized,
    /// Mellor-Crummey & Scott's fair queue RW lock.
    McsRw,
    /// Reader-preference MCS RW lock.
    McsRwReaderPref,
    /// Writer-preference MCS RW lock.
    McsRwWriterPref,
    /// Hsieh & Weihl's per-thread-mutex lock.
    PerThread,
    /// `std::sync::RwLock`.
    StdRw,
    /// The MCS mutex treating reads as writes.
    McsMutex,
}

impl LockKind {
    /// The five locks of the paper's Figure 5, in its legend order.
    pub const FIGURE5: [LockKind; 5] = [
        LockKind::Goll,
        LockKind::Foll,
        LockKind::Roll,
        LockKind::Ksuh,
        LockKind::SolarisLike,
    ];

    /// Every lock in the workspace.
    pub const ALL: [LockKind; 12] = [
        LockKind::Goll,
        LockKind::Foll,
        LockKind::Roll,
        LockKind::Ksuh,
        LockKind::SolarisLike,
        LockKind::Centralized,
        LockKind::McsRw,
        LockKind::McsRwReaderPref,
        LockKind::McsRwWriterPref,
        LockKind::PerThread,
        LockKind::StdRw,
        LockKind::McsMutex,
    ];

    /// Display name matching the paper's legend where applicable.
    pub fn name(self) -> &'static str {
        match self {
            LockKind::Goll => "GOLL",
            LockKind::Foll => "FOLL",
            LockKind::Roll => "ROLL",
            LockKind::Ksuh => "KSUH",
            LockKind::SolarisLike => "Solaris Like",
            LockKind::Centralized => "Centralized",
            LockKind::McsRw => "MCS-RW",
            LockKind::McsRwReaderPref => "MCS-RW-rp",
            LockKind::McsRwWriterPref => "MCS-RW-wp",
            LockKind::PerThread => "Per-thread",
            LockKind::StdRw => "std RwLock",
            LockKind::McsMutex => "MCS mutex",
        }
    }

    /// Whether concurrent readers can hold this lock together. `false`
    /// only for the mutual-exclusion baseline (the MCS mutex treats every
    /// acquisition as exclusive); conformance tests use this to skip
    /// reader-sharing assertions.
    pub fn readers_share(self) -> bool {
        !matches!(self, LockKind::McsMutex)
    }

    /// Parses a CLI name (case-insensitive; accepts paper legend names).
    pub fn parse(s: &str) -> Option<LockKind> {
        let k = s.trim().to_ascii_lowercase().replace([' ', '_'], "-");
        Some(match k.as_str() {
            "goll" => LockKind::Goll,
            "foll" => LockKind::Foll,
            "roll" => LockKind::Roll,
            "ksuh" => LockKind::Ksuh,
            "solaris" | "solaris-like" => LockKind::SolarisLike,
            "centralized" | "naive" => LockKind::Centralized,
            "mcs-rw" | "mcsrw" => LockKind::McsRw,
            "mcs-rw-rp" | "mcsrw-rp" => LockKind::McsRwReaderPref,
            "mcs-rw-wp" | "mcsrw-wp" => LockKind::McsRwWriterPref,
            "per-thread" | "perthread" | "hsieh-weihl" => LockKind::PerThread,
            "std" | "std-rwlock" => LockKind::StdRw,
            "mcs" | "mcs-mutex" => LockKind::McsMutex,
            _ => return None,
        })
    }
}

/// Construction options for the OLL locks (GOLL/FOLL/ROLL). The
/// baselines have no C-SNZI tree to configure and ignore these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LockOptions {
    /// Build the OLL locks with adaptive C-SNZIs: arrivals stay root-only
    /// until measured contention inflates the tree, and a quiet spell
    /// deflates it again.
    pub adaptive: bool,
    /// Override the C-SNZI tree shape to one sized for this many threads
    /// (for adaptive locks this caps the inflated leaf count). `None`
    /// keeps the default one-leaf-per-thread shape.
    pub shape_threads: Option<usize>,
    /// Wrap the OLL locks in the BRAVO reader-biasing layer
    /// (`oll_core::Bravo`): biased reads bypass the lock through the
    /// process-global visible-readers table until a writer revokes.
    pub biased: bool,
    /// Arm the `oll-hazard` layer on every constructed lock (poison
    /// policy `Poison`, deadlock detection on) so its steady-state
    /// tracking cost shows up in the measurement. Unlike the other
    /// options this applies to the baselines too. A no-op unless the
    /// workspace is built with the `hazard` feature.
    pub hazard: bool,
    /// Build FOLL/ROLL with the NUMA cohort writer gate: per-socket
    /// writer queues with batched local hand-off before a cross-node
    /// release (`FollBuilder::cohort` / `RollBuilder::cohort`). Ignored
    /// by GOLL and the baselines, which have no cohort path.
    pub cohort: bool,
    /// Wrap the OLL locks in the `oll_core::SelfTuning` online policy
    /// controller: the lock's observed read/write mix and slow-path
    /// fraction steer its BRAVO bias, C-SNZI deflation, backoff, and
    /// cohort-batch knobs while it runs. Ignored by the baselines,
    /// which have no knobs to steer.
    pub self_tuning: bool,
}

impl LockOptions {
    /// True when every field is at its default (the JSON reports omit
    /// nothing, but sweeps use this to label runs).
    pub fn is_default(&self) -> bool {
        *self == Self::default()
    }
}

/// One throughput measurement's parameters.
///
/// The paper's harness: "threads repeatedly acquire and release the lock
/// in a tight loop without performing any work within the critical
/// section. Threads decide whether to acquire the lock for reading or
/// writing using a per-thread private random number generator and a target
/// read percentage" — plus 100,000 acquisitions per thread (10,000 for
/// read percentages ≤ 50%) and the average of 3 runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of concurrent threads.
    pub threads: usize,
    /// Percentage of acquisitions that are reads (0–100).
    pub read_pct: u32,
    /// Acquisitions performed by *each* thread.
    pub acquisitions_per_thread: usize,
    /// Dummy work iterations inside the critical section (paper: 0).
    pub critical_work: u32,
    /// Dummy work iterations between acquisitions (paper: 0).
    pub outside_work: u32,
    /// Base PRNG seed; thread `i` uses a stream derived from it.
    pub seed: u64,
    /// Independent repetitions to average (paper: 3).
    pub runs: usize,
    /// When set, the harness additionally checks the reader-writer
    /// exclusion invariant on every critical section (slower; used by the
    /// integration tests, not the benchmarks).
    pub verify: bool,
}

impl WorkloadConfig {
    /// A paper-shaped config scaled for quick local runs.
    pub fn quick(threads: usize, read_pct: u32) -> Self {
        Self {
            threads,
            read_pct,
            // The paper's 100k/10k split, scaled down 20x so a full sweep
            // finishes in minutes on a small machine.
            acquisitions_per_thread: if read_pct > 50 { 5_000 } else { 500 },
            critical_work: 0,
            outside_work: 0,
            seed: 0x5EED_2009,
            runs: 3,
            verify: false,
        }
    }

    /// The paper's exact per-thread acquisition counts (§5.1).
    pub fn paper_fidelity(threads: usize, read_pct: u32) -> Self {
        Self {
            acquisitions_per_thread: if read_pct > 50 { 100_000 } else { 10_000 },
            ..Self::quick(threads, read_pct)
        }
    }

    /// Total acquisitions across all threads.
    pub fn total_acquisitions(&self) -> usize {
        self.threads * self.acquisitions_per_thread
    }
}

/// The six panels of Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig5Panel {
    /// (a) 100% reads.
    A,
    /// (b) 99% reads.
    B,
    /// (c) 95% reads.
    C,
    /// (d) 80% reads.
    D,
    /// (e) 50% reads.
    E,
    /// (f) 0% reads.
    F,
}

impl Fig5Panel {
    /// All panels in paper order.
    pub const ALL: [Fig5Panel; 6] = [
        Fig5Panel::A,
        Fig5Panel::B,
        Fig5Panel::C,
        Fig5Panel::D,
        Fig5Panel::E,
        Fig5Panel::F,
    ];

    /// The panel's target read percentage.
    pub fn read_pct(self) -> u32 {
        match self {
            Fig5Panel::A => 100,
            Fig5Panel::B => 99,
            Fig5Panel::C => 95,
            Fig5Panel::D => 80,
            Fig5Panel::E => 50,
            Fig5Panel::F => 0,
        }
    }

    /// The panel's lowercase letter tag (`"a"`..`"f"`), as used in CSV
    /// and JSON output.
    pub fn tag(self) -> &'static str {
        match self {
            Fig5Panel::A => "a",
            Fig5Panel::B => "b",
            Fig5Panel::C => "c",
            Fig5Panel::D => "d",
            Fig5Panel::E => "e",
            Fig5Panel::F => "f",
        }
    }

    /// The paper's caption for the panel.
    pub fn caption(self) -> &'static str {
        match self {
            Fig5Panel::A => "Figure 5(a): 100% Reads",
            Fig5Panel::B => "Figure 5(b): 99% Reads",
            Fig5Panel::C => "Figure 5(c): 95% Reads",
            Fig5Panel::D => "Figure 5(d): 80% Reads",
            Fig5Panel::E => "Figure 5(e): 50% Reads",
            Fig5Panel::F => "Figure 5(f): 0% Reads",
        }
    }

    /// Parses `a`..`f`.
    pub fn parse(s: &str) -> Option<Fig5Panel> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "a" => Fig5Panel::A,
            "b" => Fig5Panel::B,
            "c" => Fig5Panel::C,
            "d" => Fig5Panel::D,
            "e" => Fig5Panel::E,
            "f" => Fig5Panel::F,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_kind_parse_round_trips() {
        for k in LockKind::ALL {
            assert_eq!(LockKind::parse(k.name()), Some(k), "{}", k.name());
        }
        assert_eq!(LockKind::parse("solaris like"), Some(LockKind::SolarisLike));
        assert!(LockKind::parse("nope").is_none());
    }

    #[test]
    fn panel_read_pcts_match_paper() {
        let pcts: Vec<u32> = Fig5Panel::ALL.iter().map(|p| p.read_pct()).collect();
        assert_eq!(pcts, vec![100, 99, 95, 80, 50, 0]);
    }

    #[test]
    fn paper_fidelity_uses_paper_counts() {
        assert_eq!(
            WorkloadConfig::paper_fidelity(4, 99).acquisitions_per_thread,
            100_000
        );
        assert_eq!(
            WorkloadConfig::paper_fidelity(4, 50).acquisitions_per_thread,
            10_000
        );
    }

    #[test]
    fn quick_splits_at_50_pct() {
        assert!(
            WorkloadConfig::quick(2, 80).acquisitions_per_thread
                > WorkloadConfig::quick(2, 50).acquisitions_per_thread
        );
        assert_eq!(WorkloadConfig::quick(3, 99).total_acquisitions(), 15_000);
    }

    #[test]
    fn panel_parse() {
        assert_eq!(Fig5Panel::parse("C"), Some(Fig5Panel::C));
        assert!(Fig5Panel::parse("z").is_none());
    }
}
