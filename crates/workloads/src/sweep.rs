//! Parameter sweeps: regenerate a Figure 5 panel as a table of
//! (lock × thread-count) throughput points.

use crate::config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
use crate::runner::{run_throughput_profiled_with, ThroughputResult};
use oll_telemetry::LockSnapshot;

/// One regenerated panel: a throughput series per lock.
#[derive(Debug, Clone)]
pub struct PanelResult {
    /// Which panel this is.
    pub panel: Fig5Panel,
    /// Thread counts swept (the x axis).
    pub thread_counts: Vec<usize>,
    /// One series per lock, in the order requested.
    pub series: Vec<Series>,
    /// The OLL lock construction options the panel ran with.
    pub options: LockOptions,
}

/// A single lock's throughput curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// The lock.
    pub kind: LockKind,
    /// One point per swept thread count.
    pub points: Vec<ThroughputResult>,
    /// One telemetry profile per point — `None` entries unless the sweep
    /// requested telemetry, the build has the feature, and the lock is
    /// instrumented.
    pub profiles: Vec<Option<LockSnapshot>>,
}

/// Options for a sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Thread counts to sweep (the paper sweeps 1..=256 on its T5440).
    pub thread_counts: Vec<usize>,
    /// Locks to include (default: the Figure 5 five).
    pub locks: Vec<LockKind>,
    /// Base config factory; `threads`/`read_pct` are overwritten per point.
    pub base: WorkloadConfig,
    /// Print progress to stderr as points complete.
    pub progress: bool,
    /// Collect per-lock telemetry profiles at every point (only
    /// meaningful when the workspace is built with the `telemetry`
    /// feature; otherwise every profile stays `None`).
    pub collect_telemetry: bool,
    /// Construction options applied to the OLL locks at every point
    /// (adaptive C-SNZIs, explicit tree shapes).
    pub lock_options: LockOptions,
}

impl SweepOptions {
    /// Defaults scaled for a small machine: the Figure 5 locks over
    /// 1–16 threads, quick acquisition counts, 3-run averages.
    pub fn quick() -> Self {
        Self {
            thread_counts: vec![1, 2, 4, 8, 16],
            locks: LockKind::FIGURE5.to_vec(),
            base: WorkloadConfig::quick(1, 100),
            progress: false,
            collect_telemetry: false,
            lock_options: LockOptions::default(),
        }
    }
}

/// Regenerates one panel of Figure 5.
pub fn run_panel(panel: Fig5Panel, opts: &SweepOptions) -> PanelResult {
    let read_pct = panel.read_pct();
    let mut series = Vec::with_capacity(opts.locks.len());
    for &kind in &opts.locks {
        let mut points = Vec::with_capacity(opts.thread_counts.len());
        let mut profiles = Vec::with_capacity(opts.thread_counts.len());
        for &threads in &opts.thread_counts {
            let config = WorkloadConfig {
                threads,
                read_pct,
                // Keep the paper's 100k/10k split rule relative to the
                // base's scaling.
                acquisitions_per_thread: if read_pct > 50 {
                    opts.base.acquisitions_per_thread
                } else {
                    (opts.base.acquisitions_per_thread / 10).max(1)
                },
                ..opts.base
            };
            let (r, profile) = {
                let (r, p) = run_throughput_profiled_with(kind, &config, &opts.lock_options);
                (r, if opts.collect_telemetry { p } else { None })
            };
            if opts.progress {
                eprintln!(
                    "  {:<13} threads={:<3} -> {:>12.0} acquires/s",
                    kind.name(),
                    threads,
                    r.acquires_per_sec
                );
            }
            points.push(r);
            profiles.push(profile);
        }
        series.push(Series {
            kind,
            points,
            profiles,
        });
    }
    PanelResult {
        panel,
        thread_counts: opts.thread_counts.clone(),
        series,
        options: opts.lock_options,
    }
}

impl PanelResult {
    /// The series for a given lock, if present.
    pub fn series_for(&self, kind: LockKind) -> Option<&Series> {
        self.series.iter().find(|s| s.kind == kind)
    }

    /// Throughput of `kind` at the largest swept thread count.
    pub fn peak_threads_throughput(&self, kind: LockKind) -> Option<f64> {
        self.series_for(kind)
            .and_then(|s| s.points.last())
            .map(|p| p.acquires_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_panel_produces_full_grid() {
        let opts = SweepOptions {
            thread_counts: vec![1, 2],
            locks: vec![LockKind::Foll, LockKind::Centralized],
            base: WorkloadConfig {
                threads: 1,
                read_pct: 100,
                acquisitions_per_thread: 200,
                critical_work: 0,
                outside_work: 0,
                seed: 1,
                runs: 1,
                verify: false,
            },
            progress: false,
            collect_telemetry: false,
            lock_options: LockOptions::default(),
        };
        let panel = run_panel(Fig5Panel::A, &opts);
        assert_eq!(panel.series.len(), 2);
        for s in &panel.series {
            assert_eq!(s.points.len(), 2);
            for p in &s.points {
                assert_eq!(p.read_pct, 100);
                assert!(p.acquires_per_sec > 0.0);
            }
        }
        assert!(panel.series_for(LockKind::Foll).is_some());
        assert!(panel
            .peak_threads_throughput(LockKind::Centralized)
            .is_some());
        assert!(panel.series_for(LockKind::Goll).is_none());
    }

    #[test]
    fn low_read_panels_scale_down_acquisitions() {
        let opts = SweepOptions {
            thread_counts: vec![2],
            locks: vec![LockKind::Roll],
            base: WorkloadConfig {
                threads: 1,
                read_pct: 100,
                acquisitions_per_thread: 100,
                critical_work: 0,
                outside_work: 0,
                seed: 1,
                runs: 1,
                verify: false,
            },
            progress: false,
            collect_telemetry: false,
            lock_options: LockOptions::default(),
        };
        let panel = run_panel(Fig5Panel::F, &opts);
        let p = &panel.series[0].points[0];
        assert_eq!(p.total_acquisitions, 2 * 10); // 100/10 per thread
    }
}
