#!/usr/bin/env bash
# Regenerate the committed measurement artifacts from the evaluation
# binaries, so the checked-in numbers can always be reproduced (and
# refreshed) with one command on the current machine:
#
#   fig5_results.txt / fig5_results.csv   full Figure 5 sweep
#   latency_results.txt                   tail-latency table
#   fig5_biased.json / fig5_unbiased.json BRAVO before/after pair
#                                         (EXPERIMENTS.md, DESIGN.md #11)
#   BENCH_fig5.json                       trajectory file: a small fixed
#                                         sweep re-anchors diff across
#                                         sessions to see the perf trend
#
# The Criterion artifacts (ablation_results.txt, bench_output.txt) are
# NOT regenerated here: crates/bench sits outside the workspace and
# needs registry access for criterion — run `cargo bench -p oll-bench`
# from crates/bench on a networked machine instead.
#
# Usage:  ./scripts/regen_results.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> building release binaries"
cargo build --release -p oll-workloads

FIG5=target/release/fig5
LATENCY=target/release/latency
FIG5CHECK=target/release/fig5check

echo "==> fig5_results.{txt,csv}: full panel sweep"
"$FIG5" --panel all --threads 1,2,4,8,16 --runs 3 \
    --csv fig5_results.csv | tee fig5_results.txt

echo "==> latency_results.txt"
"$LATENCY" --threads 4 --read-pct 95 --locks all | tee latency_results.txt

echo "==> BRAVO before/after pair (panel a, OLL locks, 16 threads)"
"$FIG5" --panel a --threads 16 --runs 5 --locks GOLL,FOLL,ROLL \
    --json fig5_unbiased.json >/dev/null
"$FIG5" --panel a --threads 16 --runs 5 --locks GOLL,FOLL,ROLL \
    --biased --json fig5_biased.json >/dev/null
"$FIG5CHECK" fig5_biased.json --expect-biased

echo "==> BENCH_fig5.json: fixed trajectory sweep (panel b, OLL locks)"
# Deliberately small and fixed so the committed file stays comparable
# run-over-run: same panel, same thread counts, same lock set.
"$FIG5" --panel b --threads 1,2,4,8 --runs 3 --locks GOLL,FOLL,ROLL \
    --json BENCH_fig5.json >/dev/null
"$FIG5CHECK" BENCH_fig5.json

echo "==> BENCH_fig5.json async panel: 1M tasks on 8 workers (fig5_async)"
# The async lock family's headline demonstration: one million
# concurrently queued lock-user tasks on eight worker threads, every
# task granted or cleanly cancelled, zero surplus and zero queued
# waiters at exit. Folded into BENCH_fig5.json as its "async" member.
cargo build --release -p oll-workloads --features async
target/release/fig5_async --tasks 1000000 --workers 8 --merge BENCH_fig5.json
"$FIG5CHECK" BENCH_fig5.json --expect-async --expect-async-tasks 1000000

echo "==> BENCH_fig5.json obs member: sampler overhead (fig5_obs)"
# The monitoring acceptance number: the same panel-b sweep bare and
# under a live 100 ms sampler, folded into BENCH_fig5.json as its
# "obs" member. The recorded overall_overhead_pct should stay under 2%.
cargo build --release -p oll-workloads --features obs
target/release/fig5_obs --threads 1,2,4,8 --acquisitions 50000 --runs 5 \
    --merge BENCH_fig5.json
"$FIG5CHECK" BENCH_fig5.json --expect-obs --expect-async --expect-async-tasks 1000000

echo "==> BENCH_fig5.json cohort member: NUMA writer-gate delta (fig5_cohort)"
# The cohort-gate acceptance number: panel-f (0% reads) points paired
# with the gate off and on, folded into BENCH_fig5.json as its
# "cohort" member. On single-socket machines (ranks=1) the recorded
# overall_delta_pct bounds the gate's bookkeeping overhead; on
# multi-socket machines it shows the batched hand-off win. 100k
# acquisitions/thread keeps each half long enough that both land in
# the same scheduling regime (short runs on an oversubscribed box
# degenerate to serial execution and the pairing loses its meaning).
target/release/fig5_cohort --threads 1,2,4,8 --acquisitions 100000 --runs 3 \
    --merge BENCH_fig5.json
"$FIG5CHECK" BENCH_fig5.json --expect-obs --expect-cohort \
    --expect-async --expect-async-tasks 1000000

echo "==> BENCH_fig5.json tuned member: self-tuning controller delta (fig5_tuned)"
# The self-tuning acceptance number: panels b/e/f (one per controller
# regime) paired bare and under SelfTuning, folded into BENCH_fig5.json
# as its "tuned" member. The recorded overall_delta_pct should stay
# within noise of zero on quick-length points (they close too few
# sampling windows for the steering to pay; the number bounds the
# controller's overhead instead — see EXPERIMENTS.md).
target/release/fig5_tuned --runs 3 --merge BENCH_fig5.json
"$FIG5CHECK" BENCH_fig5.json --expect-obs --expect-cohort --expect-tuned \
    --expect-async --expect-async-tasks 1000000

echo "==> done; review the diffs before committing"
