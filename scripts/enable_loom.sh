#!/usr/bin/env bash
# Inject loom as a dev-dependency into the crates with loom model-checking
# suites. The workspace ships with no external dependencies so that tier-1
# (`cargo build --release && cargo test -q`) resolves fully offline; loom
# is pulled from the registry only where model checking actually runs —
# i.e. on a networked machine or CI runner, via this script.
#
# Usage:  ./scripts/enable_loom.sh [loom-version]
# Then:   RUSTFLAGS="--cfg loom" cargo test -p oll-csnzi --test loom_csnzi --release
#
# The injection is additive and local — don't commit the Cargo.toml edits.
set -euo pipefail

LOOM_VERSION="${1:-0.7}"
cd "$(dirname "$0")/.."

for pkg in oll-util oll-csnzi oll-core oll-baselines; do
    echo "==> adding loom@${LOOM_VERSION} to ${pkg} (dev-dependencies)"
    cargo add --package "$pkg" --dev "loom@${LOOM_VERSION}"
done

echo
echo "loom injected. The loom code paths are behind --cfg loom, e.g.:"
echo '  RUSTFLAGS="--cfg loom" cargo test -p oll-csnzi --test loom_csnzi --release'
echo '  RUSTFLAGS="--cfg loom" cargo test -p oll-core --test loom_locks --release'
echo '  RUSTFLAGS="--cfg loom" cargo test -p oll-baselines --test loom_baselines --release'
echo "Revert with: git checkout -- crates/*/Cargo.toml Cargo.toml"
