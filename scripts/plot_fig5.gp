# Gnuplot script: render the six Figure 5 panels from fig5's CSV output.
#
#   cargo run -p oll-workloads --release --bin fig5 -- --panel all --csv fig5.csv
#   gnuplot -e "csv='fig5.csv'" scripts/plot_fig5.gp
#
# Produces fig5.png with the same 3x2 layout as the paper.

if (!exists("csv")) csv = "fig5.csv"

set datafile separator comma
set terminal pngcairo size 1400,1500 font "sans,10"
set output "fig5.png"
set multiplot layout 3,2 title "Figure 5: throughput for reader-writer locks (reproduction)"

set xlabel "Threads"
set ylabel "Throughput (acquires/s)"
set key top right
set grid

panels = "a b c d e f"
titles = "'100% Reads' '99% Reads' '95% Reads' '80% Reads' '50% Reads' '0% Reads'"
locks  = "GOLL FOLL ROLL KSUH Solaris-Like"

do for [p = 1:6] {
    panel = word(panels, p)
    set title sprintf("(%s) %s", panel, word(titles, p))
    plot for [l = 1:5] csv using \
        (strcol(1) eq panel && strcol(3) eq word(locks, l) ? column(4) : NaN):5 \
        with linespoints title word(locks, l)
}

unset multiplot
print "wrote fig5.png"
