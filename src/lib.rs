//! **oll** — scalable reader-writer locks.
//!
//! A from-scratch Rust implementation of *Scalable Reader-Writer Locks*
//! (Lev, Luchangco & Olszewski, SPAA 2009): the C-SNZI data structure,
//! the three OLL lock algorithms it powers, the baseline locks the paper
//! compares against, and the full evaluation harness that regenerates the
//! paper's Figure 5.
//!
//! # Which lock should I use?
//!
//! * Read-mostly data, busy-wait acceptable, FIFO fairness wanted →
//!   [`FollLock`].
//! * Read-mostly data, maximize reader throughput, writers may wait
//!   longer → [`RollLock`].
//! * Need blocking waiters, priority-style policies, or write
//!   upgrade/downgrade → [`GollLock`].
//!
//! # Quickstart
//!
//! ```
//! use oll::{RollLock, RwLock};
//!
//! // A lock sized for up to 8 concurrently registered threads.
//! let table = RwLock::new(RollLock::new(8), std::collections::HashMap::new());
//!
//! std::thread::scope(|s| {
//!     for worker in 0..4 {
//!         let table = &table;
//!         s.spawn(move || {
//!             let mut me = table.owner().unwrap(); // register this thread
//!             me.write().insert(worker, worker * 10);
//!             let _sum: i32 = me.read().values().sum(); // shared with other readers
//!         });
//!     }
//! });
//!
//! let mut me = table.owner().unwrap();
//! assert_eq!(me.read().len(), 4);
//! ```
//!
//! # Crate map
//!
//! * [`csnzi`] — SNZI / closable-SNZI (the paper's §2).
//! * [`core`] (re-exported at the root) — GOLL, FOLL, ROLL (§3–4).
//! * [`baselines`] — KSUH, Solaris-like, MCS, MCS-RW, centralized,
//!   per-thread, std (§1, §5).
//! * [`workloads`] — the Figure 5 throughput harness (§5).
//! * `async_lock` — the futures-native [`AsyncRwLock`] family: task-waker
//!   hand-off over the same C-SNZI cores, cancel-on-drop, deadlines
//!   (build with the `async` feature; absent otherwise).
//! * [`telemetry`] — per-lock contention profiling (build with the
//!   `telemetry` feature to record; zero-cost no-ops otherwise).
//! * [`hazard`] — panic-safe poisoning, online deadlock detection, and
//!   a starvation watchdog (build with the `hazard` feature to arm;
//!   zero-cost no-ops otherwise).
//! * [`trace`] — flight-recorder event tracing with Perfetto export and
//!   wait-chain analysis (build with the `trace` feature to record).
//! * [`obs`] — continuous monitoring: sampler daemon, time-series ring,
//!   Prometheus exposition, per-lock health scores, flamegraph export
//!   (build with the `obs` feature to sample; zero-cost no-ops
//!   otherwise).
//! * [`util`] — backoff, cache padding, events, spin mutex, thread slots.

#[cfg(feature = "async")]
pub use oll_async as async_lock;
pub use oll_baselines as baselines;
pub use oll_core as core;
pub use oll_csnzi as csnzi;
pub use oll_hazard as hazard;
pub use oll_obs as obs;
pub use oll_telemetry as telemetry;
pub use oll_trace as trace;
pub use oll_util as util;
pub use oll_workloads as workloads;

pub use oll_baselines::{
    CentralizedRwLock, KsuhLock, McsMutex, McsRwLock, McsRwReaderPref, McsRwWriterPref,
    PerThreadRwLock, SolarisLikeRwLock, StdRwLock,
};
pub use oll_core::PoisonError;
#[cfg(not(loom))]
pub use oll_core::TimedHandle;
#[cfg(not(loom))]
pub use oll_core::{AcquireError, WatchedHandle};
#[cfg(not(loom))]
pub use oll_core::{Bravo, BravoHandle};
pub use oll_core::{
    FairnessPolicy, FollBuilder, FollLock, GollBuilder, GollLock, RollBuilder, RollLock, RwHandle,
    RwLock, RwLockFamily, TimedOut, UpgradableHandle,
};
#[cfg(not(loom))]
pub use oll_core::{PolicyConfig, Regime, SelfTuning, TunedHandle, TuningConfig, TuningKnobs};
pub use oll_csnzi::{
    ArrivalMode, ArrivalPolicy, CSnzi, CancelOutcome, LeafCursor, Snzi, TreeShape,
};
pub use oll_hazard::{Hazard, PoisonPolicy};

#[cfg(feature = "async")]
pub use oll_async::{
    block_on, AsyncReadGuard, AsyncRwLock, AsyncRwLockBuilder, AsyncWriteGuard, ReadFuture,
    TimedReadFuture, TimedWriteFuture, WriteFuture,
};

/// Whether this build carries the futures-native lock family (and with
/// it the task-waker machinery — `oll-async` is the only crate that
/// contains any). `tests/async_off.rs` pins this to `false` for the
/// default feature set: the waker slot lives inside `oll-async` itself,
/// so a build without the `async` feature does not merely disable the
/// machinery, it never links the crate that defines it.
pub const HAS_ASYNC_LOCKS: bool = cfg!(feature = "async");

/// Whether this build carries the continuous-monitoring subsystem (the
/// sampler daemon and the HTTP exposition listener — `oll-obs`'s
/// `enabled` half is the only code that contains either).
/// `tests/obs_off.rs` pins this to `false` for the default feature set:
/// without the `obs` feature the facade types are zero-sized, no
/// sampler thread can start, and no socket code is linked.
pub const HAS_OBS: bool = cfg!(feature = "obs");
