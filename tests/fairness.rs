//! Fairness-policy behavior: FOLL's FIFO guarantee (writers are not
//! starved by a reader stream), ROLL's reader preference (readers
//! overtake queued writers), and GOLL's alternating hand-off.

use oll::{FairnessPolicy, FollLock, GollLock, RollLock, RwHandle, RwLockFamily};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Under a continuous reader stream, a writer must acquire a FIFO lock
/// promptly: once it enqueues, readers arriving later queue behind it.
#[test]
fn foll_writer_not_starved_by_reader_stream() {
    writer_completes_under_reader_stream(FollLock::new, "FOLL");
}

#[test]
fn goll_writer_not_starved_by_reader_stream() {
    writer_completes_under_reader_stream(GollLock::new, "GOLL");
}

#[test]
fn goll_fifo_writer_not_starved() {
    writer_completes_under_reader_stream(
        |cap| {
            GollLock::builder(cap)
                .fairness(FairnessPolicy::Fifo)
                .build()
        },
        "GOLL/FIFO",
    );
}

fn writer_completes_under_reader_stream<L, F>(make: F, name: &'static str)
where
    L: RwLockFamily + 'static,
    F: FnOnce(usize) -> L,
{
    const READERS: usize = 3;
    let lock = Arc::new(make(READERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let writes_done = Arc::new(AtomicU64::new(0));

    let mut reader_threads = Vec::new();
    for _ in 0..READERS {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        reader_threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_read();
                h.unlock_read();
            }
        }));
    }

    // The writer must make progress while the readers keep streaming.
    {
        let lock = Arc::clone(&lock);
        let writes_done = Arc::clone(&writes_done);
        let w = std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let deadline = Instant::now() + Duration::from_secs(20);
            for _ in 0..50 {
                h.lock_write();
                h.unlock_write();
                writes_done.fetch_add(1, Ordering::Relaxed);
                assert!(Instant::now() < deadline, "{name}: writer starved");
            }
        });
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for t in reader_threads {
        t.join().unwrap();
    }
    assert_eq!(writes_done.load(Ordering::Relaxed), 50, "{name}");
}

/// ROLL reader preference: with a writer queued behind an active reader,
/// new readers join the *waiting* reader group ahead of later writers.
/// (The deterministic single-overtake version lives in the ROLL unit
/// tests; this is the probabilistic end-to-end check that readers keep a
/// large throughput advantage while writers still finish.)
#[test]
fn roll_readers_flow_around_writers() {
    const READERS: usize = 3;
    let lock = Arc::new(RollLock::new(READERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));

    let mut threads = Vec::new();
    for _ in 0..READERS {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_read();
                reads.fetch_add(1, Ordering::Relaxed);
                h.unlock_read();
            }
        }));
    }
    {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_write();
                writes.fetch_add(1, Ordering::Relaxed);
                h.unlock_write();
                std::thread::yield_now();
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    let r = reads.load(Ordering::Relaxed);
    let w = writes.load(Ordering::Relaxed);
    assert!(w > 0, "writer made no progress at all");
    assert!(
        r > w,
        "reads ({r}) should dominate writes ({w}) under reader preference"
    );
}

/// GOLL alternating policy: when both classes wait, a releasing writer
/// wakes readers and a releasing reader wakes a writer — so with one
/// writer looping against a reader group, writes interleave with read
/// bursts rather than one side monopolizing.
#[test]
fn goll_alternating_handoff_interleaves_classes() {
    const READERS: usize = 2;
    let lock = Arc::new(GollLock::new(READERS + 1));
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicU64::new(0));
    let writes = Arc::new(AtomicU64::new(0));

    let mut threads = Vec::new();
    for _ in 0..READERS {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let reads = Arc::clone(&reads);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_read();
                reads.fetch_add(1, Ordering::Relaxed);
                h.unlock_read();
            }
        }));
    }
    {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        let writes = Arc::clone(&writes);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_write();
                writes.fetch_add(1, Ordering::Relaxed);
                h.unlock_write();
            }
        }));
    }

    std::thread::sleep(Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    let r = reads.load(Ordering::Relaxed);
    let w = writes.load(Ordering::Relaxed);
    // Alternation means neither class is starved.
    assert!(r > 0 && w > 0, "reads={r} writes={w}");
    assert!(w >= 10, "writer starved: only {w} writes against {r} reads");
}
