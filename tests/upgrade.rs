//! Write-upgrade and downgrade semantics (§3.2.1) under concurrency.

use oll::{GollLock, RwHandle, RwLockFamily, UpgradableHandle};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn upgrade_is_atomic_no_release_window() {
    // If try_upgrade released the read lock before acquiring the write
    // lock, another writer could slip in between. Detect that: the
    // upgrader checks a value under the read lock, upgrades, and asserts
    // the value did not change across the upgrade.
    const ITERS: usize = 2_000;
    let lock = Arc::new(GollLock::new(2));
    let value = Arc::new(AtomicU64::new(0));
    let upgrader = {
        let lock = Arc::clone(&lock);
        let value = Arc::clone(&value);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut upgrades = 0u64;
            for _ in 0..ITERS {
                h.lock_read();
                let seen = value.load(Ordering::SeqCst);
                if h.try_upgrade() {
                    // Atomic upgrade: nobody may have written in between.
                    assert_eq!(
                        value.load(Ordering::SeqCst),
                        seen,
                        "writer slipped through upgrade"
                    );
                    value.fetch_add(1, Ordering::SeqCst);
                    upgrades += 1;
                    h.unlock_write();
                } else {
                    h.unlock_read();
                }
            }
            upgrades
        })
    };
    let writer = {
        let lock = Arc::clone(&lock);
        let value = Arc::clone(&value);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            for _ in 0..ITERS {
                h.lock_write();
                value.fetch_add(1, Ordering::SeqCst);
                h.unlock_write();
            }
        })
    };
    let upgrades = upgrader.join().unwrap();
    writer.join().unwrap();
    assert_eq!(
        value.load(Ordering::SeqCst),
        upgrades + ITERS as u64,
        "every successful upgrade and every write counted exactly once"
    );
}

#[test]
fn upgrade_failure_keeps_read_hold() {
    let lock = GollLock::new(3);
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();
    let mut w = lock.handle().unwrap();
    a.lock_read();
    b.lock_read();
    assert!(!a.try_upgrade());
    // a must still hold for reading: a writer cannot enter.
    assert!(!w.try_lock_write());
    b.unlock_read();
    assert!(!w.try_lock_write(), "a still holds for reading");
    a.unlock_read();
    assert!(w.try_lock_write());
    w.unlock_write();
}

#[test]
fn downgrade_admits_readers_excludes_writers() {
    let lock = GollLock::new(3);
    let mut w = lock.handle().unwrap();
    let mut r = lock.handle().unwrap();
    let mut w2 = lock.handle().unwrap();
    w.lock_write();
    w.downgrade();
    assert!(r.try_lock_read(), "downgraded lock admits readers");
    assert!(
        !w2.try_lock_write(),
        "downgraded lock still excludes writers"
    );
    r.unlock_read();
    w.unlock_read();
    assert!(w2.try_lock_write());
    w2.unlock_write();
}

#[test]
fn downgrade_wakes_waiting_readers_with_us() {
    use std::time::Duration;
    let lock = Arc::new(GollLock::new(4));
    let mut w = lock.handle().unwrap();
    w.lock_write();

    let readers_in = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for _ in 0..2 {
        let lock = Arc::clone(&lock);
        let readers_in = Arc::clone(&readers_in);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.lock_read();
            readers_in.fetch_add(1, Ordering::SeqCst);
            while readers_in.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            h.unlock_read();
        }));
    }
    // Let both readers reach the wait queue.
    std::thread::sleep(Duration::from_millis(30));
    // Downgrade: we become a reader *and* the queued readers join us.
    w.downgrade();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(readers_in.load(Ordering::SeqCst), 2);
    w.unlock_read();
}

#[test]
fn upgrade_stress_with_concurrent_readers() {
    const THREADS: usize = 4;
    const ITERS: usize = 1_000;
    let lock = Arc::new(GollLock::new(THREADS));
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll::util::XorShift64::for_thread(404, tid);
            for _ in 0..ITERS {
                h.lock_read();
                let s = state.fetch_add(1, Ordering::SeqCst);
                assert!(s >= 0);
                state.fetch_sub(1, Ordering::SeqCst);
                if rng.percent(30) && h.try_upgrade() {
                    let s = state.swap(-1, Ordering::SeqCst);
                    assert_eq!(s, 0, "upgrade without exclusivity");
                    state.store(0, Ordering::SeqCst);
                    if rng.percent(50) {
                        h.downgrade();
                        h.unlock_read();
                    } else {
                        h.unlock_write();
                    }
                    continue;
                }
                h.unlock_read();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let snap = lock.csnzi_snapshot();
    assert_eq!((snap.surplus(), snap.open), (0, true));
}
