//! Write-upgrade and downgrade semantics (§3.2.1) under concurrency.

use oll::{GollLock, RwHandle, RwLockFamily, UpgradableHandle};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn upgrade_is_atomic_no_release_window() {
    // If try_upgrade released the read lock before acquiring the write
    // lock, another writer could slip in between. Detect that: the
    // upgrader checks a value under the read lock, upgrades, and asserts
    // the value did not change across the upgrade.
    const ITERS: usize = 2_000;
    let lock = Arc::new(GollLock::new(2));
    let value = Arc::new(AtomicU64::new(0));
    let upgrader = {
        let lock = Arc::clone(&lock);
        let value = Arc::clone(&value);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut upgrades = 0u64;
            for _ in 0..ITERS {
                h.lock_read();
                let seen = value.load(Ordering::SeqCst);
                if h.try_upgrade() {
                    // Atomic upgrade: nobody may have written in between.
                    assert_eq!(
                        value.load(Ordering::SeqCst),
                        seen,
                        "writer slipped through upgrade"
                    );
                    value.fetch_add(1, Ordering::SeqCst);
                    upgrades += 1;
                    h.unlock_write();
                } else {
                    h.unlock_read();
                }
            }
            upgrades
        })
    };
    let writer = {
        let lock = Arc::clone(&lock);
        let value = Arc::clone(&value);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            for _ in 0..ITERS {
                h.lock_write();
                value.fetch_add(1, Ordering::SeqCst);
                h.unlock_write();
            }
        })
    };
    let upgrades = upgrader.join().unwrap();
    writer.join().unwrap();
    assert_eq!(
        value.load(Ordering::SeqCst),
        upgrades + ITERS as u64,
        "every successful upgrade and every write counted exactly once"
    );
}

#[test]
fn upgrade_failure_keeps_read_hold() {
    let lock = GollLock::new(3);
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();
    let mut w = lock.handle().unwrap();
    a.lock_read();
    b.lock_read();
    assert!(!a.try_upgrade());
    // a must still hold for reading: a writer cannot enter.
    assert!(!w.try_lock_write());
    b.unlock_read();
    assert!(!w.try_lock_write(), "a still holds for reading");
    a.unlock_read();
    assert!(w.try_lock_write());
    w.unlock_write();
}

#[test]
fn downgrade_admits_readers_excludes_writers() {
    let lock = GollLock::new(3);
    let mut w = lock.handle().unwrap();
    let mut r = lock.handle().unwrap();
    let mut w2 = lock.handle().unwrap();
    w.lock_write();
    w.downgrade();
    assert!(r.try_lock_read(), "downgraded lock admits readers");
    assert!(
        !w2.try_lock_write(),
        "downgraded lock still excludes writers"
    );
    r.unlock_read();
    w.unlock_read();
    assert!(w2.try_lock_write());
    w2.unlock_write();
}

#[test]
fn downgrade_wakes_waiting_readers_with_us() {
    use std::time::Duration;
    let lock = Arc::new(GollLock::new(4));
    let mut w = lock.handle().unwrap();
    w.lock_write();

    let readers_in = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for _ in 0..2 {
        let lock = Arc::clone(&lock);
        let readers_in = Arc::clone(&readers_in);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.lock_read();
            readers_in.fetch_add(1, Ordering::SeqCst);
            while readers_in.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            h.unlock_read();
        }));
    }
    // Let both readers reach the wait queue.
    std::thread::sleep(Duration::from_millis(30));
    // Downgrade: we become a reader *and* the queued readers join us.
    w.downgrade();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(readers_in.load(Ordering::SeqCst), 2);
    w.unlock_read();
}

#[test]
fn upgrade_stress_with_concurrent_readers() {
    const THREADS: usize = 4;
    const ITERS: usize = 1_000;
    let lock = Arc::new(GollLock::new(THREADS));
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll::util::XorShift64::for_thread(404, tid);
            for _ in 0..ITERS {
                h.lock_read();
                let s = state.fetch_add(1, Ordering::SeqCst);
                assert!(s >= 0);
                state.fetch_sub(1, Ordering::SeqCst);
                if rng.percent(30) && h.try_upgrade() {
                    let s = state.swap(-1, Ordering::SeqCst);
                    assert_eq!(s, 0, "upgrade without exclusivity");
                    state.store(0, Ordering::SeqCst);
                    if rng.percent(50) {
                        h.downgrade();
                        h.unlock_read();
                    } else {
                        h.unlock_write();
                    }
                    continue;
                }
                h.unlock_read();
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let snap = lock.csnzi_snapshot();
    assert_eq!((snap.surplus(), snap.open), (0, true));
}

#[test]
fn guard_try_upgrade_failure_returns_live_read_guard() {
    // The guard-level API: ReadGuard::try_upgrade must return the original
    // read guard on failure (no unlock happened), and a successful upgrade
    // must yield a write guard that downgrades back losslessly.
    let lock = GollLock::new(3);
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();

    // A second reader blocks the upgrade.
    b.lock_read();
    let ga = a.read();
    let ga = match ga.try_upgrade() {
        Ok(_) => panic!("upgrade succeeded with a second reader inside"),
        Err(g) => g, // must still be read-held
    };
    // Proof the returned guard still holds: the lock still excludes writers.
    let mut w = lock.handle().unwrap();
    assert!(w.try_write().is_none());
    b.unlock_read();
    assert!(w.try_write().is_none(), "a's guard still holds for reading");

    // Sole reader now: upgrade must succeed, downgrade must re-admit b.
    let gw = match ga.try_upgrade() {
        Ok(g) => g,
        Err(_) => panic!("sole reader upgrades"),
    };
    assert!(!b.try_lock_read());
    let gr = gw.downgrade();
    assert!(b.try_lock_read(), "downgraded guard admits readers");
    b.unlock_read();
    drop(gr);
    assert!(w.try_write().is_some()); // guard drops: lock is free again
}

#[test]
fn guard_upgrade_races_second_reader() {
    // Two threads loop on the guard API: one holds read guards and tries
    // to upgrade, the other dips in and out as a racing second reader.
    // Whatever interleaving occurs, a successful upgrade must be exclusive
    // and a failed one must keep the read hold (checked via the invariant
    // counter, which a lost hold would let run negative).
    const ITERS: usize = 2_000;
    let lock = Arc::new(GollLock::new(2));
    let state = Arc::new(AtomicI64::new(0));

    let upgrader = {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            for _ in 0..ITERS {
                let g = h.read();
                assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                state.fetch_sub(1, Ordering::SeqCst);
                match g.try_upgrade() {
                    Ok(gw) => {
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                        state.store(0, Ordering::SeqCst);
                        let gr = gw.downgrade();
                        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                        state.fetch_sub(1, Ordering::SeqCst);
                        drop(gr);
                    }
                    Err(gr) => {
                        // Still read-held: the counter stays consistent.
                        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                        state.fetch_sub(1, Ordering::SeqCst);
                        drop(gr);
                    }
                }
            }
        })
    };
    let racer = {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            for _ in 0..ITERS {
                let _g = h.read();
                assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                state.fetch_sub(1, Ordering::SeqCst);
            }
        })
    };
    upgrader.join().unwrap();
    racer.join().unwrap();

    let snap = lock.csnzi_snapshot();
    assert_eq!((snap.surplus(), snap.open), (0, true));
}
