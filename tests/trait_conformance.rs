//! Behavioral conformance: every `RwLockFamily` implementation must obey
//! the same contract — guard semantics, try-lock semantics, capacity
//! accounting, and slot reuse — checked generically.

use oll::workloads::LockKind;
use oll::{
    Bravo, CentralizedRwLock, FollLock, GollLock, KsuhLock, McsMutex, McsRwLock, McsRwReaderPref,
    McsRwWriterPref, PerThreadRwLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock,
    StdRwLock, TimedHandle, UpgradableHandle,
};
use std::time::Duration;

fn tester<L: RwLockFamily + 'static>(lock: L) -> Box<dyn Tester + 'static> {
    Box::new(LockTester {
        lock: Box::leak(Box::new(lock)),
    })
}

/// Runs `f` once per lock in [`LockKind::ALL`] — the exhaustive match
/// keeps this suite in lockstep with the evaluation harness: adding a
/// lock kind without conformance coverage fails to compile.
fn for_each_lock(mut f: impl FnMut(&dyn Fn(usize) -> Box<dyn Tester + 'static>, LockKind)) {
    for kind in LockKind::ALL {
        let make = move |cap: usize| -> Box<dyn Tester + 'static> {
            match kind {
                LockKind::Goll => tester(GollLock::new(cap)),
                LockKind::Foll => tester(FollLock::new(cap)),
                LockKind::Roll => tester(RollLock::new(cap)),
                LockKind::Ksuh => tester(KsuhLock::new(cap)),
                LockKind::SolarisLike => tester(SolarisLikeRwLock::new(cap)),
                LockKind::Centralized => tester(CentralizedRwLock::new(cap)),
                LockKind::McsRw => tester(McsRwLock::new(cap)),
                LockKind::McsRwReaderPref => tester(McsRwReaderPref::new(cap)),
                LockKind::McsRwWriterPref => tester(McsRwWriterPref::new(cap)),
                LockKind::PerThread => tester(PerThreadRwLock::new(cap)),
                LockKind::StdRw => tester(StdRwLock::new(cap)),
                LockKind::McsMutex => tester(McsMutex::new(cap)),
            }
        };
        f(&make, kind);
    }
}

/// Like [`for_each_lock`], but wraps every lock in the BRAVO biasing
/// layer (with a private visible-readers table so concurrently running
/// tests cannot collide in the process-global one). The same exhaustive
/// match keeps the wrapper sweep in lockstep with `LockKind::ALL`.
fn for_each_bravo_lock(
    bias: bool,
    mut f: impl FnMut(&dyn Fn(usize) -> Box<dyn Tester + 'static>, LockKind),
) {
    fn bravo<L: RwLockFamily + 'static>(lock: L, bias: bool) -> Box<dyn Tester + 'static> {
        tester(Bravo::wrapping(lock, bias).private_table(64))
    }
    for kind in LockKind::ALL {
        let make = move |cap: usize| -> Box<dyn Tester + 'static> {
            match kind {
                LockKind::Goll => bravo(GollLock::new(cap), bias),
                LockKind::Foll => bravo(FollLock::new(cap), bias),
                LockKind::Roll => bravo(RollLock::new(cap), bias),
                LockKind::Ksuh => bravo(KsuhLock::new(cap), bias),
                LockKind::SolarisLike => bravo(SolarisLikeRwLock::new(cap), bias),
                LockKind::Centralized => bravo(CentralizedRwLock::new(cap), bias),
                LockKind::McsRw => bravo(McsRwLock::new(cap), bias),
                LockKind::McsRwReaderPref => bravo(McsRwReaderPref::new(cap), bias),
                LockKind::McsRwWriterPref => bravo(McsRwWriterPref::new(cap), bias),
                LockKind::PerThread => bravo(PerThreadRwLock::new(cap), bias),
                LockKind::StdRw => bravo(StdRwLock::new(cap), bias),
                LockKind::McsMutex => bravo(McsMutex::new(cap), bias),
            }
        };
        f(&make, kind);
    }
}

/// Type-erased view of a lock for the generic conformance checks.
trait Tester {
    fn capacity(&self) -> usize;
    fn with_two_handles(&self, f: &mut dyn FnMut(&mut dyn RwHandle, &mut dyn RwHandle));
    fn claim_all_then_fail(&self);
    fn reuse_after_drop(&self);
    fn panic_in_critical_sections(&self, label: &str);
}

struct LockTester<L: RwLockFamily + 'static> {
    lock: &'static L,
}

impl<L: RwLockFamily> Tester for LockTester<L> {
    fn capacity(&self) -> usize {
        self.lock.capacity()
    }

    fn with_two_handles(&self, f: &mut dyn FnMut(&mut dyn RwHandle, &mut dyn RwHandle)) {
        let mut a = self.lock.handle().unwrap();
        let mut b = self.lock.handle().unwrap();
        f(&mut a, &mut b);
    }

    fn claim_all_then_fail(&self) {
        let handles: Vec<_> = (0..self.lock.capacity())
            .map(|_| self.lock.handle().unwrap())
            .collect();
        assert!(self.lock.handle().is_err(), "over-capacity claim succeeded");
        drop(handles);
    }

    fn reuse_after_drop(&self) {
        for _ in 0..3 * self.lock.capacity() {
            let mut h = self.lock.handle().unwrap();
            h.lock_read();
            h.unlock_read();
            h.lock_write();
            h.unlock_write();
        }
    }

    fn panic_in_critical_sections(&self, label: &str) {
        use oll::hazard::{Hazard, PoisonPolicy};
        let hz = self.lock.hazard();
        hz.set_poison_policy(PoisonPolicy::Poison);
        let mut h = self.lock.handle().unwrap();
        for write in [false, true] {
            let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if write {
                    let _g = h.write();
                    panic!("conformance: write holder dies");
                } else {
                    let _g = h.read();
                    panic!("conformance: read holder dies");
                }
            }));
            assert!(unwound.is_err(), "{label}: panic did not propagate");
            // No deadlock: the unwinding guard released the hold, so both
            // modes must be immediately reacquirable on a second handle.
            let mut other = self.lock.handle().unwrap();
            other.lock_read();
            other.unlock_read();
            other.lock_write();
            other.unlock_write();
            // Poison marks a panicking *write* holder only, and only in
            // hazard builds; a panicking reader never poisons.
            assert_eq!(
                hz.is_poisoned(),
                write && Hazard::enabled(),
                "{label}: wrong poison state after {} panic",
                if write { "write" } else { "read" },
            );
            hz.clear_poison();
            assert!(!hz.is_poisoned(), "{label}: clear_poison had no effect");
        }
    }
}

#[test]
fn capacity_is_reported_and_enforced() {
    for_each_lock(|make, kind| {
        let t = make(3);
        assert_eq!(t.capacity(), 3, "{}", kind.name());
        t.claim_all_then_fail();
    });
}

#[test]
fn slots_are_reusable_after_handle_drop() {
    for_each_lock(|make, _name| {
        let t = make(2);
        t.reuse_after_drop();
    });
}

#[test]
fn readers_share_writers_exclude() {
    for_each_lock(|make, kind| {
        let t = make(2);
        let name = kind.name();
        t.with_two_handles(&mut |a, b| {
            a.lock_read();
            // A second reader must be admitted without blocking (KSUH and
            // MCS-RW admit a reader whose predecessor is an active reader
            // on their *blocking* path; their try paths are deliberately
            // conservative). The MCS mutex serves `lock_read` exclusively,
            // so a concurrent reader would deadlock — skip that half.
            if kind.readers_share() {
                b.lock_read();
                b.unlock_read();
            }
            assert!(!b.try_lock_write(), "{name}: writer entered beside reader");
            a.unlock_read();
        });
    });
}

#[test]
fn write_lock_is_exclusive() {
    for_each_lock(|make, kind| {
        let t = make(2);
        let name = kind.name();
        t.with_two_handles(&mut |a, b| {
            a.lock_write();
            assert!(!b.try_lock_read(), "{name}: reader entered beside writer");
            assert!(!b.try_lock_write(), "{name}: second writer entered");
            a.unlock_write();
        });
    });
}

#[test]
fn try_write_succeeds_on_free_lock_eventually() {
    // Conservative implementations may fail try_write while residual
    // queue nodes linger; a full write cycle must clear that state.
    for_each_lock(|make, kind| {
        let t = make(2);
        let name = kind.name();
        t.with_two_handles(&mut |a, _b| {
            a.lock_read();
            a.unlock_read();
            a.lock_write(); // clears any residual reader node
            a.unlock_write();
            assert!(a.try_lock_write(), "{name}: free lock refused try_write");
            a.unlock_write();
        });
    });
}

#[test]
fn bravo_wrapped_locks_enforce_capacity_and_reuse() {
    for bias in [false, true] {
        for_each_bravo_lock(bias, |make, kind| {
            let t = make(3);
            assert_eq!(t.capacity(), 3, "{} (bias={bias})", kind.name());
            t.claim_all_then_fail();
        });
        for_each_bravo_lock(bias, |make, _kind| {
            let t = make(2);
            t.reuse_after_drop();
        });
    }
}

#[test]
fn bravo_wrapped_readers_share_writers_exclude() {
    for bias in [false, true] {
        for_each_bravo_lock(bias, |make, kind| {
            let t = make(2);
            let name = kind.name();
            t.with_two_handles(&mut |a, b| {
                a.lock_read();
                // With the bias armed even the MCS mutex admits a second
                // *fast* reader (the wrapper bypasses the inner lock), but
                // a colliding slot would route b to the exclusive inner
                // path and deadlock — so only probe sharing where the
                // inner lock itself shares.
                if kind.readers_share() {
                    b.lock_read();
                    b.unlock_read();
                }
                assert!(
                    !b.try_lock_write(),
                    "{name} (bias={bias}): writer entered beside reader"
                );
                a.unlock_read();
            });
        });
        for_each_bravo_lock(bias, |make, kind| {
            let t = make(2);
            let name = kind.name();
            t.with_two_handles(&mut |a, b| {
                a.lock_write();
                assert!(
                    !b.try_lock_read(),
                    "{name} (bias={bias}): reader entered beside writer"
                );
                assert!(
                    !b.try_lock_write(),
                    "{name} (bias={bias}): second writer entered"
                );
                a.unlock_write();
                assert!(b.try_lock_write(), "{name} (bias={bias})");
                b.unlock_write();
            });
        });
    }
}

#[test]
fn bravo_wrapped_upgrade_paths() {
    for bias in [false, true] {
        let lock = Bravo::wrapping(GollLock::new(2), bias).private_table(64);
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        // Sole reader upgrades (fast-path hold when biased, slow-path
        // hold otherwise); a rival reader must force a failure that
        // keeps the read hold.
        a.lock_read();
        assert!(a.try_upgrade(), "sole reader upgrades (bias={bias})");
        a.downgrade();
        b.lock_read();
        assert!(
            !a.try_upgrade(),
            "rival reader blocks upgrade (bias={bias})"
        );
        assert!(
            !b.try_upgrade(),
            "rival reader blocks upgrade (bias={bias})"
        );
        // Both kept their read holds.
        a.unlock_read();
        assert!(b.try_upgrade(), "now-sole reader upgrades (bias={bias})");
        b.unlock_write();
    }
}

#[test]
fn bravo_wrapped_timeout_paths() {
    fn timed<L>(lock: Bravo<L>, bias: bool)
    where
        L: RwLockFamily,
        for<'a> L::Handle<'a>: TimedHandle,
    {
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        assert!(a.lock_read_timeout(Duration::from_secs(5)).is_ok());
        // A reader (fast or slow) must time a writer out without the
        // revocation scan hanging the attempt.
        assert!(
            b.lock_write_timeout(Duration::from_millis(10)).is_err(),
            "writer must time out beside reader (bias={bias})"
        );
        a.unlock_read();
        assert!(b.lock_write_timeout(Duration::from_secs(5)).is_ok());
        assert!(
            a.lock_read_timeout(Duration::from_millis(10)).is_err(),
            "reader must time out beside writer (bias={bias})"
        );
        b.unlock_write();
        assert!(a.lock_read_timeout(Duration::from_secs(5)).is_ok());
        a.unlock_read();
    }
    for bias in [false, true] {
        timed(
            Bravo::wrapping(GollLock::new(2), bias).private_table(64),
            bias,
        );
        timed(
            Bravo::wrapping(FollLock::new(2), bias).private_table(64),
            bias,
        );
        timed(
            Bravo::wrapping(RollLock::new(2), bias).private_table(64),
            bias,
        );
        timed(
            Bravo::wrapping(SolarisLikeRwLock::new(2), bias).private_table(64),
            bias,
        );
        timed(
            Bravo::wrapping(StdRwLock::new(2), bias).private_table(64),
            bias,
        );
    }
}

/// The robustness sweep: every lock kind × read/write critical-section
/// panic × plain/BRAVO-wrapped (biased and unbiased) must unwind without
/// deadlocking a later acquirer, and the poison mark must track exactly
/// the panicking-write-holder case (in `hazard` builds).
#[test]
fn panicking_holders_never_deadlock_and_poison_correctly() {
    quiet_conformance_panics();
    for_each_lock(|make, kind| {
        make(2).panic_in_critical_sections(kind.name());
    });
    for bias in [false, true] {
        for_each_bravo_lock(bias, |make, kind| {
            make(2).panic_in_critical_sections(&format!("Bravo<{}> bias={bias}", kind.name()));
        });
    }
}

/// Silences the default panic-hook report for this suite's own injected
/// panics; real failures still report through the previous hook.
fn quiet_conformance_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .or_else(|| info.payload().downcast_ref::<String>().map(String::as_str));
            if msg.is_some_and(|m| m.starts_with("conformance:")) {
                return;
            }
            prev(info);
        }));
    });
}

#[test]
fn guards_unlock_on_drop_and_sequence_correctly() {
    for_each_lock(|make, kind| {
        let t = make(2);
        let name = kind.name();
        t.with_two_handles(&mut |a, b| {
            {
                a.lock_read();
                a.unlock_read();
            }
            a.lock_write();
            a.unlock_write();
            // Interleaved handles: b acquires after a released.
            assert!(b.try_lock_write(), "{name}");
            b.unlock_write();
        });
    });
}
