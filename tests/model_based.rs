//! Model-based property tests: each lock is driven single-threaded
//! through arbitrary operation sequences on several handles, against a
//! sequential reference model of reader-writer state.
//!
//! Soundness direction (must always hold): an acquisition the model
//! forbids must fail, and blocking acquisitions are only issued when the
//! model guarantees they cannot block. Conservative `try_*`
//! implementations (FOLL/ROLL/KSUH fail on a non-empty queue even when
//! compatible) are allowed to fail where the model would permit — that is
//! their documented contract — so the checks are implications, not
//! equivalences.

// Gated: run with `cargo test --features proptest`.
#![cfg(feature = "proptest")]

use oll::{
    CentralizedRwLock, FollLock, GollLock, KsuhLock, McsRwLock, McsRwReaderPref, McsRwWriterPref,
    PerThreadRwLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock, StdRwLock,
};
use proptest::prelude::*;

const HANDLES: usize = 3;

#[derive(Debug, Clone, Copy)]
enum Op {
    TryRead(usize),
    TryWrite(usize),
    LockRead(usize),
    LockWrite(usize),
    Unlock(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..HANDLES).prop_map(Op::TryRead),
        (0..HANDLES).prop_map(Op::TryWrite),
        (0..HANDLES).prop_map(Op::LockRead),
        (0..HANDLES).prop_map(Op::LockWrite),
        (0..HANDLES).prop_map(Op::Unlock),
    ]
}

/// What each handle currently holds, per the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Hold {
    None,
    Read,
    Write,
}

fn run_model<L: RwLockFamily>(lock: &L, ops: &[Op]) {
    let mut handles: Vec<_> = (0..HANDLES).map(|_| lock.handle().unwrap()).collect();
    let mut holds = [Hold::None; HANDLES];

    let readers = |holds: &[Hold; HANDLES]| holds.iter().filter(|h| **h == Hold::Read).count();
    let writer = |holds: &[Hold; HANDLES]| holds.contains(&Hold::Write);

    for &op in ops {
        match op {
            Op::TryRead(i) => {
                if holds[i] != Hold::None {
                    continue; // handle busy: out of contract
                }
                let ok = handles[i].try_lock_read();
                if ok {
                    assert!(
                        !writer(&holds),
                        "try_read succeeded while the model shows a writer"
                    );
                    holds[i] = Hold::Read;
                }
            }
            Op::TryWrite(i) => {
                if holds[i] != Hold::None {
                    continue;
                }
                let ok = handles[i].try_lock_write();
                if ok {
                    assert!(
                        readers(&holds) == 0 && !writer(&holds),
                        "try_write succeeded while the model shows holders"
                    );
                    holds[i] = Hold::Write;
                }
            }
            Op::LockRead(i) => {
                // Only issue a blocking read when it cannot block: no
                // writer holds, and (for strict-FIFO locks) no residual
                // writer can be queued because we are single-threaded.
                if holds[i] != Hold::None || writer(&holds) {
                    continue;
                }
                handles[i].lock_read();
                holds[i] = Hold::Read;
            }
            Op::LockWrite(i) => {
                if holds[i] != Hold::None || writer(&holds) || readers(&holds) > 0 {
                    continue;
                }
                handles[i].lock_write();
                holds[i] = Hold::Write;
            }
            Op::Unlock(i) => match holds[i] {
                Hold::None => {}
                Hold::Read => {
                    handles[i].unlock_read();
                    holds[i] = Hold::None;
                }
                Hold::Write => {
                    handles[i].unlock_write();
                    holds[i] = Hold::None;
                }
            },
        }
    }
    // Drain all holds so the lock ends clean.
    for (i, hold) in holds.iter().enumerate() {
        match hold {
            Hold::None => {}
            Hold::Read => handles[i].unlock_read(),
            Hold::Write => handles[i].unlock_write(),
        }
    }
    // The drained lock must accept a full cycle.
    handles[0].lock_write();
    handles[0].unlock_write();
    handles[0].lock_read();
    handles[0].unlock_read();
}

macro_rules! model_test {
    ($name:ident, $ctor:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn $name(ops in proptest::collection::vec(op_strategy(), 1..120)) {
                let lock = $ctor(HANDLES);
                run_model(&lock, &ops);
            }
        }
    };
}

model_test!(goll_follows_model, GollLock::new);
model_test!(foll_follows_model, FollLock::new);
model_test!(roll_follows_model, RollLock::new);
model_test!(ksuh_follows_model, KsuhLock::new);
model_test!(solaris_like_follows_model, SolarisLikeRwLock::new);
model_test!(centralized_follows_model, CentralizedRwLock::new);
model_test!(mcs_rw_follows_model, McsRwLock::new);
model_test!(mcs_rw_rp_follows_model, McsRwReaderPref::new);
model_test!(mcs_rw_wp_follows_model, McsRwWriterPref::new);
model_test!(per_thread_follows_model, PerThreadRwLock::new);
model_test!(std_rw_follows_model, StdRwLock::new);
