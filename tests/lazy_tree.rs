//! The §2.2 lazy-tree option end-to-end: all three OLL locks must behave
//! identically with deferred C-SNZI tree allocation.

use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn exclusion_stress<L: RwLockFamily + 'static>(lock: L, threads: usize) {
    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    let mut joins = Vec::new();
    for tid in 0..threads {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll::util::XorShift64::for_thread(2121, tid);
            for _ in 0..1_000 {
                if rng.percent(80) {
                    h.lock_read();
                    assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                } else {
                    h.lock_write();
                    assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                    state.store(0, Ordering::SeqCst);
                    h.unlock_write();
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn goll_lazy_tree_stress() {
    exclusion_stress(GollLock::builder(4).lazy_tree(true).build(), 4);
}

#[test]
fn foll_lazy_tree_stress() {
    exclusion_stress(FollLock::builder(4).lazy_tree(true).build(), 4);
}

#[test]
fn roll_lazy_tree_stress() {
    exclusion_stress(RollLock::builder(4).lazy_tree(true).build(), 4);
}

#[test]
fn goll_lazy_tree_stays_unallocated_without_contention() {
    // A single uncontended thread always arrives at the root, so the tree
    // never materializes.
    let lock = GollLock::builder(4).lazy_tree(true).build();
    let mut h = lock.handle().unwrap();
    for _ in 0..100 {
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
    }
    // (Verified via the csnzi-level test; the lock API intentionally does
    // not expose its internal C-SNZI. Completing without allocation panics
    // or hangs is the contract here.)
}
