//! End-to-end contract of the `obs` monitoring layer: the sampler's
//! time-series deltas telescope back to the final telemetry snapshot
//! (even across ring eviction), the exposition endpoint serves
//! parseable Prometheus text and a valid `oll.obs` document over real
//! HTTP, the flamegraph export round-trips against the trace analyzer
//! with zero unmatched records, and a hammered lock scores as live.

#![cfg(feature = "obs")]

use oll::obs::{HealthConfig, Sampler, SamplerConfig};
use oll::telemetry::registry;
use oll::util::XorShift64;
use oll::{GollLock, RwHandle, RwLockFamily};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

const THREADS: usize = 4;

/// The paper's §5.1 loop against one named lock, for `dur` wall time.
fn hammer(lock: &GollLock, read_pct: u32, dur: Duration) {
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            scope.spawn(move || {
                let mut handle = lock.handle().expect("capacity covers every thread");
                let mut rng = XorShift64::for_thread(0x0B5E_2026, tid);
                let start = Instant::now();
                while start.elapsed() < dur {
                    for _ in 0..64 {
                        if rng.percent(read_pct) {
                            handle.lock_read();
                            handle.unlock_read();
                        } else {
                            handle.lock_write();
                            handle.unlock_write();
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn time_series_deltas_reproduce_the_final_snapshot() {
    let name = "obs_consistency/GOLL";
    let lock = GollLock::new(THREADS);
    lock.telemetry().rename(name);

    let sampler = Sampler::start(SamplerConfig {
        interval: Duration::from_millis(1),
        ring_capacity: 2,
    });
    assert!(sampler.is_active());

    // Hammer until the tiny ring has provably wrapped, so the totals
    // below exercise the fold-on-evict path, not just live windows.
    let start = Instant::now();
    while sampler.state().windows_evicted == 0 && start.elapsed() < Duration::from_secs(10) {
        hammer(&lock, 95, Duration::from_millis(10));
        sampler.sample_now();
    }

    let state = sampler.stop();
    assert!(state.samples > 0);
    assert!(state.windows_evicted > 0, "ring never wrapped");
    assert!(state.windows.len() <= 2);

    // Summing every retained and evicted window must reproduce the
    // end-of-run registry snapshot exactly — counters and histograms.
    let finals = registry::snapshot_all();
    let fin = finals
        .iter()
        .find(|s| s.name == name)
        .expect("lock is still registered");
    let total = state
        .totals
        .iter()
        .find(|s| s.name == name)
        .expect("lock was sampled");
    assert_eq!(total, fin, "telescoped deltas drifted from the snapshot");
    drop(lock);
}

fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("endpoint accepts");
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: oll\r\nConnection: close\r\n\r\n"
    )
    .expect("request writes");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("response reads");
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a body");
    (head.to_string(), body.to_string())
}

#[test]
fn exposition_endpoint_serves_metrics_json_and_health() {
    let name = "obs_http/GOLL";
    let lock = GollLock::new(THREADS);
    lock.telemetry().rename(name);

    let sampler = Sampler::start(SamplerConfig {
        interval: Duration::from_millis(5),
        ring_capacity: 64,
    });
    let server = sampler.serve("127.0.0.1:0").expect("ephemeral port binds");
    let addr = server.local_addr().expect("listener is bound");

    hammer(&lock, 95, Duration::from_millis(20));
    sampler.sample_now();

    let (head, body) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
    assert!(head.contains("text/plain; version=0.0.4"));
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    assert!(body.contains(&format!("lock=\"{escaped}\"")), "{body}");
    assert!(body.contains("oll_lock_acquire_rate"), "{body}");
    assert!(body.contains("oll_lock_hold_time_ns"), "{body}");
    assert!(body.contains("quantile=\"0.99\""), "{body}");
    // Every sample line must parse as `series value`.
    for line in body
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let (series, value) = line.rsplit_once(' ').expect("line has a value");
        assert!(!series.is_empty());
        assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
    }

    let (head, body) = http_get(addr, "/json");
    assert!(head.starts_with("HTTP/1.1 200"));
    let doc = oll::workloads::json::parse::parse(&body).expect("oll.obs document parses");
    assert_eq!(
        doc.get("schema").and_then(|v| v.as_str()),
        Some("oll.obs"),
        "{body}"
    );
    assert!(doc.get("totals").is_some());

    let (head, _) = http_get(addr, "/nope");
    assert!(head.starts_with("HTTP/1.1 404"), "head: {head}");

    server.shutdown();
    let state = sampler.stop();
    assert!(state.samples > 0);
    drop(lock);
}

#[test]
fn flamegraph_round_trips_against_the_analyzer() {
    use oll::trace::{analyze, AnalyzerConfig, LockDescriptor, Timeline, TraceKind, TraceRecord};
    let rec = |ts_ns, tid, kind, token| TraceRecord {
        ts_ns,
        tid,
        lock: 1,
        kind,
        token,
    };
    // One spin-only read and one fully staged write, so all three wait
    // phases appear with known weights.
    let tl = Timeline {
        records: vec![
            rec(0, 1, TraceKind::ReadBegin, 0),
            rec(10, 1, TraceKind::ReadAcquired, 0),
            rec(0, 2, TraceKind::WriteBegin, 0),
            rec(5, 2, TraceKind::Enqueued, 7),
            rec(20, 1, TraceKind::Granted, 7),
            rec(30, 2, TraceKind::WriteAcquired, 0),
        ],
        locks: vec![LockDescriptor {
            id: 1,
            kind: "GOLL".into(),
            name: "obs flame/GOLL".into(),
        }],
        ..Timeline::default()
    };
    let report = analyze(&tl, &AnalyzerConfig::default());
    assert_eq!(report.unmatched_grants, 0);

    let folded = oll::obs::flame::render_folded(&tl, &report);
    let lines = oll::obs::flame::parse_folded(&folded).expect("own output parses");
    assert!(!lines.is_empty());
    let total: u64 = lines.iter().map(|l| l.weight).sum();
    let breakdown: u64 = report
        .breakdowns
        .iter()
        .map(|b| b.spin_ns + b.queued_ns + b.handoff_ns)
        .sum();
    assert_eq!(total, breakdown, "folded weights drifted from the analyzer");
    assert!(lines.iter().all(|l| l.frames[0] == "obs_flame/GOLL"));
}

#[test]
fn hammered_lock_scores_as_live() {
    let name = "obs_health/GOLL";
    let lock = GollLock::new(THREADS);
    lock.telemetry().rename(name);

    let sampler = Sampler::start(SamplerConfig {
        interval: Duration::from_millis(5),
        ring_capacity: 64,
    });
    hammer(&lock, 50, Duration::from_millis(30));
    let state = sampler.stop();

    let health = oll::obs::health::score_all(&state, &HealthConfig::default());
    let mine = health
        .iter()
        .find(|h| h.name == name)
        .expect("hammered lock was scored");
    assert!(mine.acquires > 0);
    assert!(mine.health.severity() >= 1, "not idle: {mine:?}");
    let ratio = mine.read_ratio.expect("acquires imply a read ratio");
    assert!((0.0..=1.0).contains(&ratio));
    drop(lock);
}
