//! Integration tests for the futures-native lock family: exclusion
//! under a real multi-threaded executor, deadline timeouts, drop
//! cancellation, and the poll-never-blocks contract.
//!
//! Run with `cargo test --features async --test async_lock`. Without the
//! feature this file compiles to nothing.

#![cfg(all(feature = "async", not(loom)))]

use oll::workloads::async_exec::Executor;
use oll::{block_on, AsyncRwLock};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Wake, Waker};
use std::time::{Duration, Instant};

fn noop_waker() -> Waker {
    struct Noop;
    impl Wake for Noop {
        fn wake(self: Arc<Self>) {}
    }
    Waker::from(Arc::new(Noop))
}

/// Readers overlap, writers exclude everyone: `occupancy` is -1 while a
/// write guard is live and the live-reader count otherwise, checked at
/// every guard boundary across 20k tasks on 4 worker threads.
#[test]
fn executor_scale_exclusion() {
    const TASKS: usize = 20_000;
    const WRITE_EVERY: usize = 16;

    let lock = Arc::new(AsyncRwLock::new(0u64));
    let occupancy = Arc::new(AtomicI64::new(0));
    let exec = Executor::new(4);
    for i in 0..TASKS {
        let lock = Arc::clone(&lock);
        let occupancy = Arc::clone(&occupancy);
        exec.spawn(async move {
            if i % WRITE_EVERY == 0 {
                let mut g = lock.write().await;
                assert_eq!(occupancy.swap(-1, Ordering::SeqCst), 0, "writer overlap");
                *g += 1;
                occupancy.store(0, Ordering::SeqCst);
            } else {
                let g = lock.read().await;
                assert!(
                    occupancy.fetch_add(1, Ordering::SeqCst) >= 0,
                    "reader saw writer"
                );
                std::hint::black_box(*g);
                occupancy.fetch_sub(1, Ordering::SeqCst);
            }
        });
    }
    exec.wait_idle();
    drop(exec);
    assert_eq!(*block_on(lock.read()), (TASKS / WRITE_EVERY) as u64);
    assert_eq!(lock.csnzi_snapshot().surplus(), 0);
    assert_eq!(lock.queued_waiters(), 0);
}

/// The satellite pin: polling an async acquisition must NEVER block the
/// polling thread — a contended poll spins a bounded budget and returns
/// `Pending`. The write guard is held by *this same thread*, so if any
/// poll parked or spun unboundedly the test would deadlock rather than
/// fail an assertion.
#[test]
fn poll_never_blocks_while_contended() {
    let lock = AsyncRwLock::new(0u32);
    let gate = lock.try_write().expect("uncontended");

    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut read = lock.read();
    let mut write = lock.write();
    let start = Instant::now();
    for _ in 0..10_000 {
        assert!(Pin::new(&mut read).poll(&mut cx).is_pending());
        assert!(Pin::new(&mut write).poll(&mut cx).is_pending());
    }
    // 20k contended polls complete quickly; any parking would show up
    // as seconds (or a hang), not microseconds.
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "contended polls took {:?}",
        start.elapsed()
    );
    drop(read);
    drop(write);
    drop(gate);
    assert_eq!(lock.queued_waiters(), 0, "dropped futures must not linger");
    assert!(block_on(lock.read()).eq(&0));
}

/// Deadline futures return `Err(TimedOut)` under contention and a guard
/// when free — through the public `oll` re-exports.
#[test]
fn deadlines_time_out_and_grant() {
    let lock = AsyncRwLock::new(7u32);

    // Free lock: granted well before the deadline.
    let g = block_on(lock.read_deadline(Instant::now() + Duration::from_secs(5)));
    assert_eq!(*g.expect("free lock grants"), 7);

    // Contended: both variants time out, and the queue drains.
    let gate = lock.try_write().expect("uncontended");
    let deadline = Instant::now() + Duration::from_millis(20);
    assert!(block_on(lock.read_deadline(deadline)).is_err());
    let deadline = Instant::now() + Duration::from_millis(20);
    assert!(block_on(lock.write_deadline(deadline)).is_err());
    drop(gate);
    assert_eq!(lock.queued_waiters(), 0);
    assert_eq!(*block_on(lock.write()), 7);
}

/// Dropping a pending future mid-wait cancels the acquisition: the
/// grant cascade skips the tombstone and hands the lock onward.
#[test]
fn dropped_future_is_skipped_by_the_next_grant() {
    let lock = Arc::new(AsyncRwLock::new(0u64));
    let gate = lock.try_write().expect("uncontended");

    // Queue a writer, then abandon it.
    let waker = noop_waker();
    let mut cx = Context::from_waker(&waker);
    let mut doomed = lock.write();
    assert!(Pin::new(&mut doomed).poll(&mut cx).is_pending());
    assert_eq!(lock.queued_waiters(), 1);
    drop(doomed);

    // Queue a live reader behind the tombstone on a real executor.
    let exec = Executor::new(2);
    let hits = Arc::new(AtomicU64::new(0));
    {
        let lock = Arc::clone(&lock);
        let hits = Arc::clone(&hits);
        exec.spawn(async move {
            std::hint::black_box(*lock.read().await);
            hits.fetch_add(1, Ordering::Relaxed);
        });
    }
    while lock.queued_waiters() < 2 {
        std::thread::yield_now();
    }
    drop(gate);
    exec.wait_idle();
    assert_eq!(hits.load(Ordering::Relaxed), 1);
    assert_eq!(lock.queued_waiters(), 0);
    assert_eq!(lock.csnzi_snapshot().surplus(), 0);
}

/// Deadline acquisitions racing real hand-offs at executor scale: every
/// task either gets the lock or times out, and nothing leaks.
#[test]
fn deadline_storm_accounts_for_every_task() {
    const TASKS: usize = 2_000;
    let lock = Arc::new(AsyncRwLock::new(0u64));
    let exec = Executor::new(4);
    let granted = Arc::new(AtomicU64::new(0));
    let timed_out = Arc::new(AtomicU64::new(0));
    let gate = lock.try_write().expect("uncontended");
    for i in 0..TASKS {
        let lock = Arc::clone(&lock);
        let granted = Arc::clone(&granted);
        let timed_out = Arc::clone(&timed_out);
        // Deadlines sweep from "already expired" to "far future".
        let deadline = Instant::now() + Duration::from_micros((i * 37 % 50_000) as u64);
        exec.spawn(async move {
            let won = if i % 10 == 0 {
                lock.write_deadline(deadline)
                    .await
                    .map(|mut g| *g += 1)
                    .is_ok()
            } else {
                lock.read_deadline(deadline)
                    .await
                    .map(|g| std::hint::black_box(*g))
                    .is_ok()
            };
            if won {
                granted.fetch_add(1, Ordering::Relaxed);
            } else {
                timed_out.fetch_add(1, Ordering::Relaxed);
            }
        });
    }
    std::thread::sleep(Duration::from_millis(5));
    drop(gate);
    exec.wait_idle();
    drop(exec);
    assert_eq!(
        granted.load(Ordering::Relaxed) + timed_out.load(Ordering::Relaxed),
        TASKS as u64
    );
    assert_eq!(lock.queued_waiters(), 0);
    assert_eq!(lock.csnzi_snapshot().surplus(), 0);
    // The lock stays fully functional after the storm.
    *block_on(lock.write()) += 1;
    std::hint::black_box(*block_on(lock.read()));
}
