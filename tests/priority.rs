//! GOLL priority semantics (§3.1 turnstile ordering, §5.1's "unless a
//! higher-priority writer is waiting").

use oll::{GollLock, RwHandle, RwLockFamily};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// W0 holds the lock; a reader (priority pr) and a writer (priority pw)
/// queue behind it; W0 releases under the Alternating policy. Returns
/// which class entered first.
fn first_after_release(pr: u8, pw: u8) -> char {
    let lock = Arc::new(GollLock::new(4));
    let mut w0 = lock.handle().unwrap();
    w0.lock_write();

    let first = Arc::new(AtomicU8::new(0));
    let mut threads = Vec::new();
    {
        let lock = Arc::clone(&lock);
        let first = Arc::clone(&first);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_priority(pr);
            h.lock_read();
            let _ = first.compare_exchange(0, b'R', Ordering::SeqCst, Ordering::SeqCst);
            h.unlock_read();
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    {
        let lock = Arc::clone(&lock);
        let first = Arc::clone(&first);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_priority(pw);
            h.lock_write();
            let _ = first.compare_exchange(0, b'W', Ordering::SeqCst, Ordering::SeqCst);
            h.unlock_write();
        }));
    }
    std::thread::sleep(Duration::from_millis(30));
    w0.unlock_write();
    for t in threads {
        t.join().unwrap();
    }
    first.load(Ordering::SeqCst) as char
}

#[test]
fn equal_priorities_hand_to_readers() {
    assert_eq!(first_after_release(0, 0), 'R');
}

#[test]
fn higher_priority_writer_overrides_readers() {
    assert_eq!(first_after_release(0, 5), 'W');
}

#[test]
fn higher_priority_reader_still_goes_first() {
    assert_eq!(first_after_release(5, 3), 'R');
}

/// With several writers queued, the highest-priority one is released
/// first; ties break FIFO.
#[test]
fn writers_are_released_in_priority_order() {
    let lock = Arc::new(GollLock::new(8));
    let mut holder = lock.handle().unwrap();
    holder.lock_write();

    // Queue writers with priorities 1, 3, 2 (in that arrival order).
    let order = Arc::new(AtomicUsize::new(0));
    let sequence: Arc<[AtomicUsize; 3]> = Arc::new([
        AtomicUsize::new(0),
        AtomicUsize::new(0),
        AtomicUsize::new(0),
    ]);
    let mut threads = Vec::new();
    for (i, prio) in [(0usize, 1u8), (1, 3), (2, 2)] {
        let lock = Arc::clone(&lock);
        let order = Arc::clone(&order);
        let sequence = Arc::clone(&sequence);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_priority(prio);
            h.lock_write();
            sequence[i].store(order.fetch_add(1, Ordering::SeqCst) + 1, Ordering::SeqCst);
            h.unlock_write();
        }));
        // Ensure arrival order is deterministic.
        std::thread::sleep(Duration::from_millis(30));
    }

    holder.unlock_write();
    for t in threads {
        t.join().unwrap();
    }
    let got: Vec<usize> = sequence.iter().map(|s| s.load(Ordering::SeqCst)).collect();
    // Priorities 1, 3, 2 -> release order: prio 3 first, then 2, then 1.
    assert_eq!(got, vec![3, 1, 2], "writer release order follows priority");
}

/// Priority never bypasses mutual exclusion.
#[test]
fn priority_stress_preserves_exclusion() {
    use std::sync::atomic::AtomicI64;
    const THREADS: usize = 5;
    let lock = Arc::new(GollLock::new(THREADS));
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_priority((tid % 3) as u8);
            let mut rng = oll::util::XorShift64::for_thread(606, tid);
            for _ in 0..1_000 {
                if rng.percent(70) {
                    h.lock_read();
                    assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                } else {
                    h.lock_write();
                    assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                    state.store(0, Ordering::SeqCst);
                    h.unlock_write();
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let snap = lock.csnzi_snapshot();
    assert_eq!((snap.surplus(), snap.open), (0, true));
}
