//! The adaptive C-SNZI option end-to-end: all three OLL locks must
//! behave identically when their reader C-SNZIs start root-only and
//! inflate under measured contention, and the inflation lifecycle must
//! be observable through the lock API.

use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

fn exclusion_stress<L: RwLockFamily + 'static>(lock: L, threads: usize) {
    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    let mut joins = Vec::new();
    for tid in 0..threads {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll::util::XorShift64::for_thread(4242, tid);
            for _ in 0..1_000 {
                if rng.percent(80) {
                    h.lock_read();
                    assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                } else {
                    h.lock_write();
                    assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                    state.store(0, Ordering::SeqCst);
                    h.unlock_write();
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn goll_adaptive_stress() {
    exclusion_stress(GollLock::builder(4).adaptive(true).build(), 4);
}

#[test]
fn foll_adaptive_stress() {
    exclusion_stress(FollLock::builder(4).adaptive(true).build(), 4);
}

#[test]
fn roll_adaptive_stress() {
    exclusion_stress(RollLock::builder(4).adaptive(true).build(), 4);
}

#[test]
fn adaptive_stress_with_eager_tree_threshold() {
    // arrival_threshold(0) pins every arrival to the tree, so the whole
    // stress runs on inflated C-SNZIs (maximum tree traffic).
    exclusion_stress(
        GollLock::builder(4)
            .adaptive(true)
            .arrival_threshold(0)
            .build(),
        4,
    );
    exclusion_stress(
        FollLock::builder(4)
            .adaptive(true)
            .arrival_threshold(0)
            .build(),
        4,
    );
    exclusion_stress(
        RollLock::builder(4)
            .adaptive(true)
            .arrival_threshold(0)
            .build(),
        4,
    );
}

#[test]
fn builders_report_adaptive_mode() {
    assert!(GollLock::builder(2).adaptive(true).build().is_adaptive());
    assert!(FollLock::builder(2).adaptive(true).build().is_adaptive());
    assert!(RollLock::builder(2).adaptive(true).build().is_adaptive());
    assert!(!GollLock::new(2).is_adaptive());
    assert!(!FollLock::new(2).is_adaptive());
    assert!(!RollLock::new(2).is_adaptive());
}

#[test]
fn adaptive_supersedes_lazy_tree() {
    let lock = GollLock::builder(2).lazy_tree(true).adaptive(true).build();
    assert!(lock.is_adaptive());
}

#[test]
fn uncontended_adaptive_locks_never_inflate() {
    // A single thread never fails the root CAS, so no contention is ever
    // measured and the tree must not materialize.
    let goll = GollLock::builder(4).adaptive(true).build();
    let mut h = goll.handle().unwrap();
    for _ in 0..200 {
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
    }
    drop(h);
    assert!(!goll.is_inflated(), "GOLL inflated without contention");

    let foll = FollLock::builder(4).adaptive(true).build();
    let mut h = foll.handle().unwrap();
    for _ in 0..200 {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);
    assert!(!foll.is_inflated(), "FOLL inflated without contention");

    let roll = RollLock::builder(4).adaptive(true).build();
    let mut h = roll.handle().unwrap();
    for _ in 0..200 {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);
    assert!(!roll.is_inflated(), "ROLL inflated without contention");
}

#[test]
fn tree_routed_arrivals_inflate_adaptive_locks() {
    // Pinning arrivals to the tree (threshold 0) is the deterministic
    // stand-in for a root-CAS failure streak: the very first read must
    // build and activate the tree.
    let goll = GollLock::builder(4)
        .adaptive(true)
        .arrival_threshold(0)
        .build();
    let mut h = goll.handle().unwrap();
    h.lock_read();
    assert!(goll.is_inflated(), "GOLL tree arrival did not inflate");
    h.unlock_read();

    let foll = FollLock::builder(4)
        .adaptive(true)
        .arrival_threshold(0)
        .build();
    let mut h = foll.handle().unwrap();
    h.lock_read();
    assert!(foll.is_inflated(), "FOLL tree arrival did not inflate");
    h.unlock_read();

    let roll = RollLock::builder(4)
        .adaptive(true)
        .arrival_threshold(0)
        .build();
    let mut h = roll.handle().unwrap();
    h.lock_read();
    assert!(roll.is_inflated(), "ROLL tree arrival did not inflate");
    h.unlock_read();
}

#[test]
fn adaptive_locks_work_at_capacity_one() {
    // Degenerate sizing: capacity 1 clamps every shape computation.
    for _ in 0..3 {
        let lock = GollLock::builder(1).adaptive(true).build();
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
    }
}

#[test]
fn adaptive_handles_survive_reader_writer_interleaving() {
    // Readers join while a writer queues: the adaptive C-SNZI is closed
    // and reopened across the hand-off, exercising inflation state across
    // open/close cycles.
    let lock = Arc::new(
        FollLock::builder(3)
            .adaptive(true)
            .arrival_threshold(0)
            .build(),
    );
    std::thread::scope(|scope| {
        for tid in 0..3 {
            let lock = Arc::clone(&lock);
            scope.spawn(move || {
                let mut h = lock.handle().unwrap();
                for i in 0..500 {
                    if (i + tid) % 4 == 0 {
                        h.lock_write();
                        h.unlock_write();
                    } else {
                        h.lock_read();
                        h.unlock_read();
                    }
                }
            });
        }
    });
    assert!(lock.is_inflated());
}
