//! The zero-cost half of the monitoring contract: without the `obs`
//! feature the sampler facade is zero-sized, no daemon thread ever
//! starts, the exposition listener refuses to serve, and a full
//! start/sample/stop round trip produces an empty state.

#![cfg(not(feature = "obs"))]

use oll::obs::{ObsServer, Sampler, SamplerConfig};

#[test]
#[allow(clippy::assertions_on_constants)]
fn facade_is_zero_sized() {
    assert!(!oll::obs::enabled());
    assert!(!oll::HAS_OBS);
    assert_eq!(std::mem::size_of::<Sampler>(), 0);
    assert_eq!(std::mem::size_of::<ObsServer>(), 0);
}

#[test]
fn sampler_is_inert() {
    let sampler = Sampler::start(SamplerConfig::default());
    assert!(!sampler.is_active(), "no daemon thread without the feature");
    sampler.sample_now();
    let state = sampler.state();
    assert_eq!(state.samples, 0);
    assert_eq!(state.elapsed_ns, 0);
    assert!(state.windows.is_empty());
    assert!(state.totals.is_empty());
    assert!(state.latest().is_none());
}

#[test]
fn serve_reports_unsupported() {
    let sampler = Sampler::start(SamplerConfig::default());
    let err = sampler
        .serve("127.0.0.1:0")
        .expect_err("no exposition endpoint without the feature");
    assert_eq!(err.kind(), std::io::ErrorKind::Unsupported);
}

#[test]
fn stop_returns_empty_state() {
    let sampler = Sampler::start(SamplerConfig::default());
    let state = sampler.stop();
    assert_eq!(state.samples, 0);
    assert_eq!(state.windows_evicted, 0);
    assert!(state.windows.is_empty());
    let health = oll::obs::health::score_all(&state, &oll::obs::HealthConfig::default());
    assert!(health.is_empty());
}
