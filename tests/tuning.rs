//! The self-tuning controller's behavioural contract:
//!
//! 1. **Oscillation bound** — a square-wave workload that alternates
//!    regimes every sampling window must produce a *pinned* flip count
//!    (one per genuine phase change, zero during the alternation), or
//!    the controller would thrash the knobs it is supposed to steady.
//! 2. **Convergence to bypass** — an uncontended biased lock must settle
//!    into the zero-RMW read path with the controller never running: no
//!    sampling windows, no slow-path entries, no C-SNZI root writes.
//! 3. **Decision-point races** — fault injection at `tuning.decide`
//!    stretches the window between classification and knob application;
//!    mutual exclusion must survive acquisitions racing a half-made
//!    decision (the arm/disarm hazard).
//!
//! Determinism: the controller's only clock is slow-path entries plus
//! the explicit [`SelfTuning::tick`]; the pacing tests drive `tick`
//! directly so every decision is exact, not statistical.

#![cfg(not(loom))]

use oll::{
    FollBuilder, FollLock, GollLock, PolicyConfig, Regime, RwHandle, RwLockFamily, SelfTuning,
    TuningConfig,
};

/// Windows are closed only by explicit `tick`s (the slow-path clock is
/// effectively disabled), so every tick classifies exactly the
/// acquisitions pushed since the previous one — fast *or* slow: a FOLL
/// write after reads takes the queue slow path, and must still land in
/// the same window as the reads around it.
fn paced(hysteresis: u32, cooldown: u32) -> TuningConfig {
    TuningConfig {
        window: u32::MAX,
        hysteresis,
        cooldown,
    }
}

/// Pushes one synthetic sampling window: `reads`/`writes` acquisitions
/// (uncontended, so they all take the fast path), flushed and ticked.
fn window(lock: &SelfTuning<FollLock>, reads: usize, writes: usize) {
    let mut h = lock.handle().unwrap();
    for _ in 0..reads {
        h.lock_read();
        h.unlock_read();
    }
    for _ in 0..writes {
        h.lock_write();
        h.unlock_write();
    }
    h.flush();
    drop(h);
    lock.tick();
}

#[test]
fn square_wave_workload_has_a_pinned_flip_count() {
    let lock = SelfTuning::with_config(
        FollBuilder::new(2).build(),
        paced(2, 0),
        PolicyConfig::default(),
    );
    assert_eq!(lock.regime(), Regime::Mixed);

    // Sustained read-heavy phase: hysteresis holds the first window,
    // the second applies — exactly one flip however long it persists.
    for _ in 0..4 {
        window(&lock, 100, 1);
    }
    assert_eq!(lock.regime(), Regime::ReadHeavy);
    assert_eq!(lock.flips(), 1, "one phase change, one flip");
    assert_eq!(lock.holds(), 1, "the first read-heavy window was held");
    assert_eq!(lock.knobs().rearm_multiplier(), 1);
    assert_eq!(lock.knobs().deflate_after(), 256);

    // Square wave: alternate write-heavy and read-heavy every window.
    // Each disagreeing window's streak is reset by the next agreeing
    // one, so hysteresis=2 is never satisfied: zero further flips.
    for _ in 0..8 {
        window(&lock, 1, 100);
        window(&lock, 100, 1);
    }
    assert_eq!(lock.flips(), 1, "square wave must not flip the policy");
    assert_eq!(lock.regime(), Regime::ReadHeavy);

    // The wave ends in a sustained write phase: exactly one more flip.
    for _ in 0..4 {
        window(&lock, 1, 100);
    }
    assert_eq!(lock.regime(), Regime::WriteHeavy);
    assert_eq!(lock.flips(), 2);
    assert!(!lock.knobs().bias_allowed());
    assert_eq!(lock.windows(), 24);
}

#[test]
fn cooldown_caps_the_decision_rate() {
    let lock = SelfTuning::with_config(
        FollBuilder::new(2).build(),
        paced(1, 3),
        PolicyConfig::default(),
    );
    // hysteresis=1: the first read-heavy window flips immediately...
    window(&lock, 100, 1);
    assert_eq!(lock.flips(), 1);
    // ...and arms a 3-window cooldown: an immediate sustained reversal
    // is held for 3 windows and applies on the 4th.
    for i in 0..3 {
        window(&lock, 1, 100);
        assert_eq!(lock.flips(), 1, "cooldown window {i} must hold");
    }
    window(&lock, 1, 100);
    assert_eq!(lock.flips(), 2);
    assert_eq!(lock.regime(), Regime::WriteHeavy);
    assert_eq!(lock.holds(), 3);
}

#[test]
fn idle_windows_steer_nothing() {
    let lock = SelfTuning::with_config(
        FollBuilder::new(2).build(),
        paced(1, 0),
        PolicyConfig::default(),
    );
    let before = lock.knobs().revision();
    for _ in 0..10 {
        lock.tick();
    }
    assert_eq!(lock.windows(), 10);
    assert_eq!(lock.flips(), 0);
    assert_eq!(lock.regime(), Regime::Mixed);
    assert_eq!(lock.knobs().revision(), before, "no evidence, no stores");
}

/// A lock family with no knob block (here: a raw GOLL built without the
/// shared-knob constructor path would still have one, so use the trait
/// object's default) — the wrapper must still work, steering a private
/// block. Mostly a compile-shape test: SelfTuning over any family.
#[test]
fn wrapping_any_family_works() {
    let lock = SelfTuning::new(GollLock::new(2));
    let mut h = lock.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    h.lock_write();
    h.unlock_write();
    drop(h);
    lock.tick();
    assert_eq!(lock.windows(), 1);
}

/// Acceptance pin: an uncontended biased lock under the controller
/// converges to the bypassed read path with *zero* controller activity —
/// every read is a bias grant, nothing enters the slow path, no sampling
/// window ever closes, and the C-SNZI root is never written by readers.
#[cfg(feature = "telemetry")]
#[test]
fn uncontended_biased_lock_converges_to_bypass_with_controller_idle() {
    use oll::telemetry::LockEvent;

    const READS: u64 = 10_000;
    let lock = SelfTuning::new(FollBuilder::new(2).biased(true).build_biased());
    let mut h = lock.handle().unwrap();
    // One write arms nothing (bias starts armed); do pure reads.
    for _ in 0..READS {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);

    let snap = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(
        snap.get(LockEvent::BiasGrant),
        READS,
        "every read must take the zero-RMW bypass"
    );
    assert_eq!(snap.get(LockEvent::ReadSlow), 0);
    assert_eq!(snap.get(LockEvent::CsnziRootWrite), 0);
    assert_eq!(snap.get(LockEvent::TunerSample), 0);
    assert_eq!(lock.windows(), 0, "the controller must never have run");
    assert_eq!(lock.flips(), 0);
}

/// The `tuning.decide` fault site: yield the decider between
/// classification and knob application while readers and writers hammer
/// the lock. Exclusion must hold through every half-made decision, and
/// the controller must still make progress (windows close).
#[cfg(feature = "fault-injection")]
#[test]
fn exclusion_survives_races_at_the_decision_point() {
    use oll::util::fault::FaultPlan;
    use std::sync::atomic::{AtomicI64, Ordering};

    let _guard = FaultPlan::every(0xDEC1DE, "tuning.decide", 40).install();

    const THREADS: usize = 4;
    const OPS: usize = 2_000;
    let lock = SelfTuning::with_config(
        FollBuilder::new(THREADS).biased(true).build_biased(),
        TuningConfig {
            window: 8, // close windows constantly: maximum decider traffic
            hysteresis: 1,
            cooldown: 0,
        },
        PolicyConfig::default(),
    );
    let occupancy = AtomicI64::new(0);

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let lock = &lock;
            let occupancy = &occupancy;
            s.spawn(move || {
                let mut h = lock.handle().unwrap();
                for i in 0..OPS {
                    // Per-thread phase shift keeps read- and write-heavy
                    // bursts overlapping across threads, so decisions
                    // race real acquisitions in both directions.
                    if (i / 64 + t) % 2 == 0 {
                        h.lock_read();
                        let seen = occupancy.fetch_add(1, Ordering::SeqCst);
                        assert!(seen >= 0, "reader saw a writer inside");
                        occupancy.fetch_sub(1, Ordering::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        let seen = occupancy.fetch_sub(1_000, Ordering::SeqCst);
                        assert_eq!(seen, 0, "writer entered an occupied lock");
                        occupancy.fetch_add(1_000, Ordering::SeqCst);
                        h.unlock_write();
                    }
                }
            });
        }
    });

    assert_eq!(occupancy.load(Ordering::SeqCst), 0);
    assert!(
        lock.windows() > 0,
        "contended run must have closed sampling windows"
    );
}
