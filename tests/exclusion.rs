//! Cross-crate exclusion tests: every lock in the workspace must enforce
//! reader-writer exclusion under randomized mixed workloads. These drive
//! the same harness the benchmarks use, with the invariant oracle
//! enabled, so the code path measured by Figure 5 is the code path
//! verified here.

use oll::workloads::{run_throughput, LockKind, WorkloadConfig};

fn verified(threads: usize, read_pct: u32, acquisitions: usize) -> WorkloadConfig {
    WorkloadConfig {
        threads,
        read_pct,
        acquisitions_per_thread: acquisitions,
        critical_work: 0,
        outside_work: 0,
        seed: 0xDEAD_BEEF,
        runs: 1,
        verify: true,
    }
}

#[test]
fn all_locks_mixed_70_30() {
    for kind in LockKind::ALL {
        let r = run_throughput(kind, &verified(4, 70, 1_000));
        assert!(r.acquires_per_sec > 0.0, "{}", kind.name());
    }
}

#[test]
fn all_locks_read_heavy_99() {
    for kind in LockKind::ALL {
        run_throughput(kind, &verified(4, 99, 1_000));
    }
}

#[test]
fn all_locks_write_only() {
    for kind in LockKind::ALL {
        run_throughput(kind, &verified(4, 0, 400));
    }
}

#[test]
fn all_locks_read_only() {
    for kind in LockKind::ALL {
        run_throughput(kind, &verified(4, 100, 2_000));
    }
}

#[test]
fn figure5_locks_with_critical_work() {
    // Non-empty critical sections shift the interleavings (holders get
    // preempted inside); the oracle must still hold.
    for kind in LockKind::FIGURE5 {
        let config = WorkloadConfig {
            critical_work: 64,
            ..verified(4, 80, 500)
        };
        run_throughput(kind, &config);
    }
}

#[test]
fn figure5_locks_oversubscribed() {
    // More threads than cores: exercises the yielding backoff paths.
    for kind in LockKind::FIGURE5 {
        run_throughput(kind, &verified(8, 90, 400));
    }
}

#[test]
fn seeds_vary_interleavings() {
    for seed in [1u64, 2, 3, 0xFFFF_FFFF_FFFF_FFFF] {
        let config = WorkloadConfig {
            seed,
            ..verified(4, 60, 500)
        };
        run_throughput(LockKind::Foll, &config);
        run_throughput(LockKind::Roll, &config);
        run_throughput(LockKind::Goll, &config);
    }
}
