//! The other half of the telemetry contract: without the `telemetry`
//! feature the facades are zero-sized, nothing reaches the registry, and
//! no snapshot is ever produced — the hooks compile to nothing.

#![cfg(not(feature = "telemetry"))]

use oll::telemetry::{registry, LockEvent, Telemetry, Timer};
use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock};

#[test]
fn facades_are_zero_sized() {
    assert!(!Telemetry::enabled());
    assert_eq!(std::mem::size_of::<Telemetry>(), 0);
    assert_eq!(std::mem::size_of::<Timer>(), 0);
}

#[test]
fn recording_is_inert() {
    let t = Telemetry::register("TEST");
    assert!(!t.is_active());
    t.incr(LockEvent::ReadFast);
    t.add(LockEvent::CsnziRootWrite, 1_000);
    let timer = t.timer();
    assert!(timer.elapsed_ns().is_none());
    t.record_read_acquire(&timer);
    assert!(t.snapshot().is_none());
    assert!(t.name().is_none());
}

#[test]
fn instrumented_locks_produce_no_snapshots() {
    let goll = GollLock::new(2);
    let foll = FollLock::new(2);
    let roll = RollLock::new(2);
    let solaris = SolarisLikeRwLock::new(2);
    let mut h = goll.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    h.lock_write();
    h.unlock_write();
    drop(h);
    assert!(goll.telemetry().snapshot().is_none());
    assert!(foll.telemetry().snapshot().is_none());
    assert!(roll.telemetry().snapshot().is_none());
    assert!(solaris.telemetry().snapshot().is_none());
    assert_eq!(registry::live_count(), 0);
    assert!(registry::snapshot_all().is_empty());
}
