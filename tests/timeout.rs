//! Timed, cancellable acquisition (the robustness extension): every lock
//! with a [`TimedHandle`] must undo a timed-out acquisition completely —
//! C-SNZI surplus departed, queue entries excised or abandoned-and-
//! reclaimed, hand-off chains intact — leaving the lock immediately
//! re-acquirable in both modes.

use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, TimedHandle};
use oll_baselines::{SolarisLikeRwLock, StdRwLock};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Generous bound for acquisitions that must succeed: long enough for any
/// CI machine, short enough to fail the test rather than hang it.
const MUST: Duration = Duration::from_secs(20);

/// The acceptance scenario: a writer holds the lock, N readers time out,
/// and every one of them undoes cleanly — afterwards the lock works in
/// both modes with no leftover surplus, queue nodes, or waiter bits.
fn readers_time_out_and_undo<L>(lock: L)
where
    L: RwLockFamily,
    for<'a> L::Handle<'a>: TimedHandle,
{
    const READERS: usize = 4;
    let mut w = lock.handle().unwrap();
    w.lock_write();

    let mut readers: Vec<_> = (0..READERS).map(|_| lock.handle().unwrap()).collect();
    for r in &mut readers {
        // An already-expired deadline: the wait must cancel immediately.
        assert!(r.lock_read_deadline(Instant::now()).is_err());
        // The undo must leave the handle reusable for another timed try.
        assert!(r.lock_read_timeout(Duration::from_millis(2)).is_err());
    }

    w.unlock_write();

    // All cancelled readers can immediately acquire together...
    for r in &mut readers {
        r.lock_read_timeout(MUST).expect("lock not re-acquirable");
    }
    for r in &mut readers {
        r.unlock_read();
    }
    // ...and the writer can too (this drains any node a reader left).
    w.lock_write_timeout(MUST).expect("lock not re-acquirable");
    w.unlock_write();
}

/// Mirror scenario: a reader holds the lock, N writers time out; the
/// abandoned writer nodes must be reclaimed transparently on next use.
fn writers_time_out_and_undo<L>(lock: L)
where
    L: RwLockFamily,
    for<'a> L::Handle<'a>: TimedHandle,
{
    const WRITERS: usize = 4;
    let mut r = lock.handle().unwrap();
    r.lock_read();

    let mut writers: Vec<_> = (0..WRITERS).map(|_| lock.handle().unwrap()).collect();
    for w in &mut writers {
        assert!(w.lock_write_deadline(Instant::now()).is_err());
    }

    r.unlock_read();

    for w in &mut writers {
        w.lock_write_timeout(MUST).expect("lock not re-acquirable");
        w.unlock_write();
    }
    r.lock_read_timeout(MUST).expect("lock not re-acquirable");
    r.unlock_read();
}

/// A timed wait that outlives the conflicting hold must succeed; one that
/// doesn't must fail — with real threads and real waiting.
fn timed_read_respects_hold_duration<L>(lock: L)
where
    L: RwLockFamily + Send + Sync + 'static,
    for<'a> L::Handle<'a>: TimedHandle,
{
    let lock = Arc::new(lock);
    let mut w = lock.handle().unwrap();
    w.lock_write();

    let short = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut r = lock.handle().unwrap();
            r.lock_read_timeout(Duration::from_millis(10)).is_err()
        })
    };
    assert!(short.join().unwrap(), "short timeout should have expired");

    let long = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut r = lock.handle().unwrap();
            let ok = r.lock_read_timeout(MUST).is_ok();
            if ok {
                r.unlock_read();
            }
            ok
        })
    };
    std::thread::sleep(Duration::from_millis(30));
    w.unlock_write();
    assert!(long.join().unwrap(), "long timeout should have succeeded");
}

/// Every thread mixes timed and untimed acquisitions under contention;
/// the single-writer / no-writer-with-readers invariant must hold across
/// every grant, cancellation, and abandoned-node takeover.
fn mixed_timed_stress<L>(lock: L, seed: u64)
where
    L: RwLockFamily + Send + Sync + 'static,
    for<'a> L::Handle<'a>: TimedHandle,
{
    const THREADS: usize = 6;
    const ITERS: usize = 600;
    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll_util::XorShift64::for_thread(seed, tid);
            for _ in 0..ITERS {
                let timeout = Duration::from_micros(rng.next_below(300));
                match rng.next_below(4) {
                    0 => {
                        if h.lock_read_timeout(timeout).is_ok() {
                            assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                            state.fetch_sub(1, Ordering::SeqCst);
                            h.unlock_read();
                        }
                    }
                    1 => {
                        if h.lock_write_timeout(timeout).is_ok() {
                            assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                            state.store(0, Ordering::SeqCst);
                            h.unlock_write();
                        }
                    }
                    2 => {
                        h.lock_read();
                        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                        state.fetch_sub(1, Ordering::SeqCst);
                        h.unlock_read();
                    }
                    _ => {
                        h.lock_write();
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    // Quiesced: both modes acquire immediately.
    let mut h = lock.handle().unwrap();
    h.lock_write_timeout(MUST).unwrap();
    h.unlock_write();
}

macro_rules! timed_lock_suite {
    ($mod_name:ident, $make:expr, $seed:expr) => {
        mod $mod_name {
            use super::*;

            #[test]
            fn readers_time_out_and_undo_cleanly() {
                readers_time_out_and_undo($make(8));
            }

            #[test]
            fn writers_time_out_and_undo_cleanly() {
                writers_time_out_and_undo($make(8));
            }

            #[test]
            fn timed_read_respects_hold_duration() {
                super::timed_read_respects_hold_duration($make(4));
            }

            #[test]
            fn mixed_timed_stress_keeps_exclusion() {
                mixed_timed_stress($make(8), $seed);
            }
        }
    };
}

timed_lock_suite!(goll, GollLock::new, 0xA11CE);
timed_lock_suite!(foll, FollLock::new, 0xB0B);
timed_lock_suite!(roll, RollLock::new, 0xCAFE);
timed_lock_suite!(solaris_like, SolarisLikeRwLock::new, 0xD00D);
timed_lock_suite!(std_rw, StdRwLock::new, 0xE66);

/// Regression: a GOLL writer that closes the C-SNZI (readers inside) and
/// then times out before enqueuing leaves the lock *closed with readers
/// and an empty queue*. The last departing reader must reopen it, or
/// every later reader blocks forever.
#[test]
fn goll_cancelled_writer_reopens_csnzi() {
    let lock = GollLock::new(4);
    let mut r = lock.handle().unwrap();
    r.lock_read();

    let mut w = lock.handle().unwrap();
    assert!(w.lock_write_deadline(Instant::now()).is_err());

    r.unlock_read(); // must reopen the closed-with-readers C-SNZI

    let mut r2 = lock.handle().unwrap();
    r2.lock_read_timeout(MUST)
        .expect("C-SNZI left closed by the cancelled writer");
    r2.unlock_read();
    w.lock_write_timeout(MUST).unwrap();
    w.unlock_write();
}

/// FOLL: a reader whose node was closed by a queued writer and whose
/// timeout makes it the node's last departer must hand the lock off (the
/// `MustHandOff` cancellation path), not orphan the queued writer.
#[test]
fn foll_cancelled_last_reader_hands_off() {
    let lock = Arc::new(FollLock::new(4));

    // W1 parks the queue head.
    let mut w1 = lock.handle().unwrap();
    w1.lock_write();

    // R enqueues a reader node behind W1 and waits.
    let r_thread = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut r = lock.handle().unwrap();
            r.lock_read_timeout(Duration::from_millis(80)).is_err()
        })
    };
    std::thread::sleep(Duration::from_millis(20));

    // W2 enqueues behind R's node and closes its C-SNZI (FOLL closes
    // immediately), making R the node's only — and last — departer.
    let w2_thread = {
        let lock = Arc::clone(&lock);
        std::thread::spawn(move || {
            let mut w2 = lock.handle().unwrap();
            w2.lock_write();
            w2.unlock_write();
        })
    };
    std::thread::sleep(Duration::from_millis(20));

    // R times out: its cancel must leave the node abandoned (or perform
    // the hand-off itself), so that W1's release reaches W2.
    assert!(r_thread.join().unwrap(), "reader should have timed out");
    w1.unlock_write();
    w2_thread.join().unwrap();

    let mut h = lock.handle().unwrap();
    h.lock_write_timeout(MUST).unwrap();
    h.unlock_write();
}

/// FOLL/ROLL: a writer that abandons its queue node must be able to drop
/// its handle (slot reuse!) and a fresh handle must acquire normally —
/// the reclaim handshake runs in Drop.
#[test]
fn abandoned_writer_node_reclaimed_on_drop() {
    fn check<L>(lock: &L)
    where
        L: RwLockFamily,
        for<'a> L::Handle<'a>: TimedHandle,
    {
        let mut r = lock.handle().unwrap();
        r.lock_read();
        {
            let mut w = lock.handle().unwrap();
            assert!(w.lock_write_deadline(Instant::now()).is_err());
            // Holder releases; the abandoned node's takeover release runs.
            r.unlock_read();
            // `w` dropped here with a possibly pending reclaim.
        }
        let mut w2 = lock.handle().unwrap();
        w2.lock_write_timeout(MUST).unwrap();
        w2.unlock_write();
        r.lock_read_timeout(MUST).unwrap();
        r.unlock_read();
    }
    check(&FollLock::new(4));
    check(&RollLock::new(4));
}

/// The data-carrying wrapper's timed guards: Err leaves the lock free,
/// Ok hands back a live guard.
#[test]
fn rwlock_wrapper_timed_guards() {
    let rw = oll::RwLock::new(GollLock::new(2), 7u32);
    let mut a = rw.owner().unwrap();
    let mut b = rw.owner().unwrap();

    let g = a.write();
    assert!(b.read_timeout(Duration::from_millis(5)).is_err());
    assert!(b.write_timeout(Duration::from_millis(5)).is_err());
    drop(g);

    *b.write_timeout(MUST).unwrap() = 9;
    assert_eq!(*b.read_timeout(MUST).unwrap(), 9);
}
