//! Flight-recorder correctness under forced contention: every stitched
//! hand-off edge must be backed by a release on the grantor's side
//! before the grant and a wake on the grantee's side after it, every
//! acquisition's spin/queued/hand-off breakdown must sum to its total
//! latency, and the trace-side latency must land in the same log2
//! bucket (±1) as the telemetry histogram's sample for the same
//! acquisition.
//!
//! The whole suite needs recording compiled in; `trace_off.rs` checks
//! the disabled build.

#![cfg(feature = "trace")]

use oll::telemetry::LockEvent;
use oll::trace::{analyze, AnalyzerConfig, Timeline, TraceKind, TraceReport, TraceSession};
use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock};
use std::time::{Duration, Instant};

/// Polls a lock's telemetry snapshot until `pred` holds. Slow-path
/// events are counted at enqueue time, before waiting, exactly so tests
/// can rendezvous on a blocked thread.
fn wait_for<L: RwLockFamily>(lock: &L, pred: impl Fn(&oll::telemetry::LockSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = lock.telemetry().snapshot().expect("instrumented lock");
        if pred(&snap) {
            return;
        }
        assert!(Instant::now() < deadline, "condition never observed");
        std::thread::yield_now();
    }
}

/// Telemetry's histogram bucketing (`floor(log2(ns))`, 64 buckets).
fn log2_bucket(ns: u64) -> usize {
    (64 - ns.max(1).leading_zeros() as usize - 1).min(63)
}

/// Holds the write lock, parks `readers` reader threads behind it, then
/// releases so the unlock hands off to the whole queue. Returns this
/// lock's slice of the recorded window with its analysis (filtering by
/// trace id keeps other tests' concurrent locks out).
fn contended_handoff<L: RwLockFamily + Sync>(lock: &L, readers: u64) -> (Timeline, TraceReport) {
    let id = lock.telemetry().trace_id().expect("traced lock has an id");
    let session = TraceSession::begin();
    let mut writer = lock.handle().unwrap();
    writer.lock_write();
    std::thread::scope(|scope| {
        for _ in 0..readers {
            scope.spawn(|| {
                let mut reader = lock.handle().unwrap();
                reader.lock_read(); // parks behind the held writer
                reader.unlock_read();
            });
        }
        wait_for(lock, |s| s.get(LockEvent::ReadSlow) >= readers);
        // The counter rendezvous proves the readers reached the slow
        // path; the sleep lets their `enqueued` markers land well before
        // the grant so the edge join is deterministic.
        std::thread::sleep(Duration::from_millis(5));
        writer.unlock_write();
    });
    drop(writer);
    let tl = session.collect().filter_lock(id);
    let report = analyze(&tl, &AnalyzerConfig::default());
    (tl, report)
}

/// The edge contract: a hand-off edge is only credible if the grantor
/// actually released (a `*_release` record from its thread at or before
/// the grant) and the grantee's wake, when captured, follows the grant.
fn edges_are_consistent(tl: &Timeline, report: &TraceReport, label: &str) {
    assert!(
        !report.edges.is_empty(),
        "{label}: contended release stitched no hand-off edges"
    );
    for e in &report.edges {
        let released = tl.records.iter().any(|r| {
            r.tid == e.grantor_tid
                && r.ts_ns <= e.grant_ns
                && matches!(r.kind, TraceKind::ReadRelease | TraceKind::WriteRelease)
        });
        assert!(
            released,
            "{label}: grantor t{} granted at {}ns without a prior release",
            e.grantor_tid, e.grant_ns
        );
        if let Some(w) = e.wake_ns {
            assert!(
                w >= e.grant_ns,
                "{label}: wake {}ns precedes grant {}ns",
                w,
                e.grant_ns
            );
        }
    }
    assert!(
        report.edges.iter().any(|e| e.wake_ns.is_some()),
        "{label}: no grantee wake captured in the window"
    );
    for a in &report.acquisitions {
        assert_eq!(
            a.spin_ns + a.queued_ns + a.handoff_ns,
            a.total_ns(),
            "{label}: wait breakdown must sum to the total latency"
        );
    }
}

#[test]
fn goll_handoff_edges_are_stitched() {
    let lock = GollLock::new(4);
    let (tl, report) = contended_handoff(&lock, 3);
    edges_are_consistent(&tl, &report, "GOLL");
}

#[test]
fn foll_handoff_edges_are_stitched() {
    let lock = FollLock::new(4);
    let (tl, report) = contended_handoff(&lock, 3);
    edges_are_consistent(&tl, &report, "FOLL");
}

#[test]
fn roll_handoff_edges_are_stitched() {
    let lock = RollLock::new(4);
    let (tl, report) = contended_handoff(&lock, 3);
    edges_are_consistent(&tl, &report, "ROLL");
}

#[test]
fn solaris_like_handoff_edges_are_stitched() {
    let lock = SolarisLikeRwLock::new(4);
    let (tl, report) = contended_handoff(&lock, 3);
    edges_are_consistent(&tl, &report, "Solaris-like");
}

/// FIFO writer queues chain: the holder grants the head, which grants
/// the next, … — the analyzer must reconstruct that as one multi-hop
/// grant cascade rather than disjoint edges.
#[test]
fn foll_writer_queue_release_is_a_grant_cascade() {
    const WRITERS: u64 = 3;
    let lock = FollLock::new(1 + WRITERS as usize);
    let id = lock.telemetry().trace_id().expect("traced lock has an id");
    let session = TraceSession::begin();
    let mut holder = lock.handle().unwrap();
    holder.lock_write();
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                let mut w = lock.handle().unwrap();
                w.lock_write(); // joins the FIFO queue behind the holder
                w.unlock_write(); // … and grants its own successor
            });
        }
        wait_for(&lock, |s| s.get(LockEvent::WriteSlow) >= WRITERS);
        std::thread::sleep(Duration::from_millis(5));
        holder.unlock_write();
    });
    drop(holder);
    let tl = session.collect().filter_lock(id);
    let report = analyze(&tl, &AnalyzerConfig::default());
    edges_are_consistent(&tl, &report, "FOLL cascade");
    assert!(
        report.edges.len() >= WRITERS as usize,
        "one edge per queued writer, got {}",
        report.edges.len()
    );
    let longest = report.cascades.iter().map(|c| c.hops()).max().unwrap_or(0);
    assert!(
        longest >= 2,
        "draining a {WRITERS}-writer FIFO queue must form a multi-hop cascade \
         (longest seen: {longest} hops)"
    );
}

/// The cohort writer gate's grants must stitch into the same edge
/// fabric, and the analyzer's locality summary must classify them: with
/// every tid mapped to one rank (the undetected-topology fallback
/// shape) the rendered report pins a deterministic
/// `cross-socket hand-offs: 0 / N` line.
#[test]
fn cohort_handoffs_report_cross_socket_ratio() {
    const WRITERS: u64 = 3;
    let lock = oll::core::FollLock::builder(1 + WRITERS as usize)
        .cohort(true)
        .cohort_ranks(1) // all writers share one cohort: pure local hand-off
        .build();
    let id = lock.telemetry().trace_id().expect("traced lock has an id");
    let session = TraceSession::begin();
    let mut holder = lock.handle().unwrap();
    holder.lock_write();
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                let mut w = lock.handle().unwrap();
                w.lock_write();
                w.unlock_write();
            });
        }
        // No counter to poll here: a cohort writer records its slow
        // acquisition only when the grant arrives, so a parked waiter is
        // telemetry-invisible. Give all three writers ample time to park
        // in the cohort queue (the same spacing idiom as tests/cohort.rs)
        // so the drain is one unbroken local hand-off chain.
        std::thread::sleep(Duration::from_millis(200));
        holder.unlock_write();
    });
    drop(holder);
    let tl = session.collect().filter_lock(id);

    let cfg = AnalyzerConfig {
        cohort_of_tid: |_| 0, // force the single-rank fallback mapping
        ..AnalyzerConfig::default()
    };
    let report = analyze(&tl, &cfg);
    edges_are_consistent(&tl, &report, "FOLL cohort");
    assert!(
        report.total_handoffs >= WRITERS,
        "one edge per queued cohort writer, got {}",
        report.total_handoffs
    );
    assert_eq!(
        report.cross_socket_handoffs, 0,
        "a single-rank mapping admits no cross-socket hand-offs"
    );
    let text = oll::trace::render_report_text(&tl, &report);
    let expected = format!(
        "cross-socket hand-offs: 0 / {} (0.0%)",
        report.total_handoffs
    );
    assert!(
        text.contains(&expected),
        "summary line missing or wrong: wanted {expected:?} in\n{text}"
    );
}

/// A blocked writer's trace-side latency (`write_begin` →
/// `write_acquired` on the trace clock) and its telemetry histogram
/// sample (the facade timer around the same interval) are measured by
/// different clocks a few instructions apart — they must land in the
/// same log2 bucket, give or take one at a boundary.
#[test]
fn queued_write_latency_matches_telemetry_bucket() {
    let lock = GollLock::new(2);
    let id = lock.telemetry().trace_id().expect("traced lock has an id");
    let session = TraceSession::begin();
    let mut reader = lock.handle().unwrap();
    reader.lock_read();
    std::thread::scope(|scope| {
        let lock = &lock;
        scope.spawn(move || {
            let mut writer = lock.handle().unwrap();
            writer.lock_write(); // blocks until the reader departs
            writer.unlock_write();
        });
        wait_for(lock, |s| s.get(LockEvent::WriteSlow) >= 1);
        // Pin the blocked writer's latency around ~30ms so the interval
        // dwarfs any skew between the two measurements.
        std::thread::sleep(Duration::from_millis(30));
        reader.unlock_read();
    });
    drop(reader);

    let tl = session.collect().filter_lock(id);
    let report = analyze(&tl, &AnalyzerConfig::default());
    let a = report
        .acquisitions
        .iter()
        .find(|a| a.write && a.enqueued_ns.is_some())
        .expect("the blocked writer's acquisition completed in-window");
    assert_eq!(a.spin_ns + a.queued_ns + a.handoff_ns, a.total_ns());
    // The forced ~30ms wait lands in the queued component, not spin.
    assert!(
        a.queued_ns >= 20_000_000,
        "queued component should dominate: {}ns",
        a.queued_ns
    );

    let snap = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(
        snap.write_acquire.count, 1,
        "exactly one write acquisition was sampled"
    );
    let hist_bucket = snap
        .write_acquire
        .buckets
        .iter()
        .position(|&c| c > 0)
        .expect("one occupied bucket");
    let trace_bucket = log2_bucket(a.total_ns());
    assert!(
        hist_bucket.abs_diff(trace_bucket) <= 1,
        "trace total {}ns (bucket {trace_bucket}) vs telemetry bucket {hist_bucket}",
        a.total_ns()
    );
}

/// Every queued waiter stamps an `enqueued` marker carrying the token
/// it parks on, and the matching grant consumes it: a clean forced
/// hand-off window has no unmatched grants.
#[test]
fn tokens_join_enqueue_to_grant() {
    let lock = FollLock::new(3);
    let (tl, report) = contended_handoff(&lock, 2);
    let enqueued: Vec<_> = tl
        .records
        .iter()
        .filter(|r| r.kind == TraceKind::Enqueued)
        .collect();
    assert!(!enqueued.is_empty(), "parked readers stamped no tokens");
    for r in &enqueued {
        assert_ne!(r.token, 0, "enqueued markers carry a real token");
    }
    for e in &report.edges {
        assert!(
            enqueued.iter().any(|r| r.token == e.token),
            "edge token {:#x} has no matching enqueued marker",
            e.token
        );
    }
    assert_eq!(
        report.unmatched_grants, 0,
        "every grant in the window found its parked waiter"
    );
}
