//! The other half of the async contract: the default build carries no
//! waker machinery at all. The guarantee is structural — the waker slot
//! is defined inside `oll-async` itself (not in a shared crate whose
//! feature a sibling could unify on), and `oll-async` is an optional
//! dependency enabled only by the root `async` feature — so a default
//! build never links the crate that contains the machinery. This pin
//! catches the regression that would break it: `async` (or `dep:oll-async`)
//! leaking into the default feature set.
//!
//! Mirrors `telemetry_off.rs` / `hazard_off.rs`.

#![cfg(not(feature = "async"))]

use oll::telemetry::LockEvent;
use oll::trace::TraceKind;

#[test]
fn default_build_has_no_waker_storage() {
    // `oll-async` is not a dependency of this build: WakerSlot does not
    // exist here (referencing `oll::async_lock` would not compile) and
    // the feature const pins that. The assertion is deliberately on a
    // constant — the constant IS the claim under test.
    #[allow(clippy::assertions_on_constants)]
    {
        assert!(!oll::HAS_ASYNC_LOCKS);
    }
}

#[test]
fn waker_taxonomy_exists_but_nothing_records_it() {
    // The telemetry/trace taxonomies carry the async events even in
    // sync-only builds (report schemas stay stable across features)...
    assert!(LockEvent::ALL.iter().any(|e| e.name() == "waker_stored"));
    assert!(LockEvent::ALL.iter().any(|e| e.name() == "waker_woken"));
    assert!(TraceKind::ALL.iter().any(|k| k.name() == "waker_stored"));
    // ...but no sync lock path ever records them: drive every slow path
    // shape and check the counters stay zero (when telemetry records at
    // all; without the feature the snapshot is None and equally clean).
    use oll::{FollLock, RwHandle, RwLockFamily};
    let lock = FollLock::new(2);
    std::thread::scope(|s| {
        for _ in 0..2 {
            s.spawn(|| {
                let mut h = lock.handle().unwrap();
                for _ in 0..500 {
                    h.lock_read();
                    h.unlock_read();
                    h.lock_write();
                    h.unlock_write();
                }
            });
        }
    });
    if let Some(snap) = lock.telemetry().snapshot() {
        for event in [LockEvent::WakerStored, LockEvent::WakerWoken] {
            assert_eq!(snap.get(event), 0, "sync path recorded {}", event.name());
        }
    }
}
