//! NUMA cohort writer gate conformance: the per-socket writer queues
//! layered over FOLL/ROLL (`FollBuilder::cohort` / `RollBuilder::cohort`)
//! must preserve reader-writer exclusion and FIFO order *within* a
//! cohort, and the batch bound must actually bound writer starvation
//! *across* cohorts: a waiter on another socket gets the lock after at
//! most `cohort_batch` consecutive same-socket hand-offs.
//!
//! The cross-cohort tests force a two-rank topology with
//! `cohort_ranks(2)` and pin threads with `set_cohort`, so they run the
//! remote path deterministically even on single-socket CI hardware.

use oll::workloads::{run_throughput_profiled_with, LockKind, LockOptions, WorkloadConfig};
use oll::{FollLock, RollLock, RwHandle, RwLockFamily};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn verified(threads: usize, read_pct: u32, acquisitions: usize) -> WorkloadConfig {
    WorkloadConfig {
        threads,
        read_pct,
        acquisitions_per_thread: acquisitions,
        critical_work: 0,
        outside_work: 0,
        seed: 0xC0_0409,
        runs: 1,
        verify: true,
    }
}

/// The benchmark harness's exclusion oracle over the cohort-enabled
/// locks: the gate orders writers, the underlying queue still excludes,
/// and a mixed workload must never see a reader alongside a writer.
#[test]
fn cohort_locks_preserve_exclusion() {
    let opts = LockOptions {
        cohort: true,
        ..LockOptions::default()
    };
    for kind in [LockKind::Foll, LockKind::Roll] {
        for read_pct in [0, 50, 95] {
            let (r, _) = run_throughput_profiled_with(kind, &verified(4, read_pct, 500), &opts);
            assert!(
                r.acquires_per_sec > 0.0,
                "{}: nonpositive cohort throughput at {read_pct}% reads",
                kind.name()
            );
        }
    }
}

/// Exclusion must survive the full option stack: cohort gate below,
/// BRAVO reader biasing above (`build_biased` passthrough).
#[test]
fn cohort_locks_preserve_exclusion_under_bravo() {
    let opts = LockOptions {
        cohort: true,
        biased: true,
        ..LockOptions::default()
    };
    for kind in [LockKind::Foll, LockKind::Roll] {
        let (r, _) = run_throughput_profiled_with(kind, &verified(4, 80, 500), &opts);
        assert!(
            r.acquires_per_sec > 0.0,
            "{}: nonpositive biased cohort throughput",
            kind.name()
        );
    }
}

// Writers pinned to the same cohort must acquire in arrival order: the
// gate's local grant chain walks the per-cohort queue FIFO, same as the
// global MCS queue it stands in for. Arrival order is forced by parking
// each writer well before the next one starts.

#[test]
fn foll_fifo_within_cohort() {
    let lock = FollLock::builder(4).cohort(true).cohort_ranks(2).build();
    assert!(lock.is_cohort());
    let order = Mutex::new(Vec::new());
    let mut holder = lock.handle().unwrap();
    holder.set_cohort(0);
    holder.lock_write();
    std::thread::scope(|scope| {
        for tag in 0..3usize {
            let lock = &lock;
            let order = &order;
            scope.spawn(move || {
                let mut w = lock.handle().unwrap();
                w.set_cohort(0);
                w.lock_write();
                order.lock().unwrap().push(tag);
                w.unlock_write();
            });
            // Generous spacing: the writer above is parked in cohort 0's
            // queue long before the next one arrives.
            std::thread::sleep(Duration::from_millis(50));
        }
        holder.unlock_write();
    });
    assert_eq!(
        *order.lock().unwrap(),
        vec![0, 1, 2],
        "same-cohort writers must be granted in arrival order"
    );
}

#[test]
fn roll_fifo_within_cohort() {
    let lock = RollLock::builder(4).cohort(true).cohort_ranks(2).build();
    assert!(lock.is_cohort());
    let order = Mutex::new(Vec::new());
    let mut holder = lock.handle().unwrap();
    holder.set_cohort(0);
    holder.lock_write();
    std::thread::scope(|scope| {
        for tag in 0..3usize {
            let lock = &lock;
            let order = &order;
            scope.spawn(move || {
                let mut w = lock.handle().unwrap();
                w.set_cohort(0);
                w.lock_write();
                order.lock().unwrap().push(tag);
                w.unlock_write();
            });
            std::thread::sleep(Duration::from_millis(50));
        }
        holder.unlock_write();
    });
    assert_eq!(
        *order.lock().unwrap(),
        vec![0, 1, 2],
        "same-cohort writers must be granted in arrival order"
    );
}

/// The uncontended fast path: a writer on a cohort-enabled lock whose
/// cohort queue is empty *and* whose global queue is idle bypasses the
/// gate and acquires like a plain writer. The bypass must be invisible
/// to correctness — cycles before a contended gate drain, the drain
/// itself (FIFO through the gate), and cycles after it must all
/// succeed, and the queue must end empty so node reclamation survived
/// the mode switches.
#[test]
fn uncontended_bypass_keeps_gate_consistent() {
    macro_rules! drive {
        ($lock:expr) => {{
            let lock = &$lock;
            let mut h = lock.handle().unwrap();
            h.set_cohort(0);
            // Nobody else is queued anywhere: every cycle rides the
            // bypass.
            for _ in 0..200 {
                h.lock_write();
                h.unlock_write();
                h.lock_read();
                h.unlock_read();
            }
            // Engage the gate: hold, park three cohort writers, drain
            // FIFO.
            let order = Mutex::new(Vec::new());
            h.lock_write();
            std::thread::scope(|scope| {
                for tag in 0..3usize {
                    let order = &order;
                    scope.spawn(move || {
                        let mut w = lock.handle().unwrap();
                        w.set_cohort(0);
                        w.lock_write();
                        order.lock().unwrap().push(tag);
                        w.unlock_write();
                    });
                    std::thread::sleep(Duration::from_millis(50));
                }
                h.unlock_write();
            });
            assert_eq!(
                *order.lock().unwrap(),
                vec![0, 1, 2],
                "gate drain after bypassed cycles lost FIFO order"
            );
            // The drain left the gate idle again: bypass cycles resume,
            // and the closing read/write pair recycles the lone reader
            // node so the queue can drain empty.
            for _ in 0..200 {
                h.lock_write();
                h.unlock_write();
            }
            h.lock_read();
            h.unlock_read();
            h.lock_write();
            h.unlock_write();
            drop(h);
            assert!(lock.is_queue_empty());
        }};
    }
    drive!(FollLock::builder(5).cohort(true).cohort_ranks(2).build());
    drive!(RollLock::builder(5).cohort(true).cohort_ranks(2).build());
}

/// The starvation bound. A writer parked on the *other* cohort while
/// the local cohort hands the lock around must be granted after at most
/// `cohort_batch` local hand-offs: the release path counts grants in
/// the grant word and, at the bound, releases the global queue (where
/// the remote cohort's owner waits) before continuing locally. With a
/// batch bound of 3 and eight eager local writers, at most 3 of them
/// may beat the remote writer.
#[test]
fn batch_bound_releases_cross_cohort() {
    const BATCH: u32 = 3;
    const LOCALS: usize = 8;
    let lock = Arc::new(
        FollLock::builder(2 + LOCALS)
            .cohort(true)
            .cohort_ranks(2)
            .cohort_batch(BATCH)
            .build(),
    );
    assert_eq!(lock.cohort_batch(), BATCH);
    assert_eq!(lock.cohort_count(), 2);

    // `true` = a local (cohort 0) acquisition, `false` = the remote.
    let order = Mutex::new(Vec::new());
    let mut holder = lock.handle().unwrap();
    holder.set_cohort(0);
    holder.lock_write();
    std::thread::scope(|scope| {
        let lock = &lock;
        let order = &order;
        scope.spawn(move || {
            let mut w = lock.handle().unwrap();
            w.set_cohort(1);
            w.lock_write(); // heads cohort 1: parks in the global queue
            order.lock().unwrap().push(false);
            w.unlock_write();
        });
        // Let the remote writer reach the global queue first …
        std::thread::sleep(Duration::from_millis(100));
        for _ in 0..LOCALS {
            scope.spawn(move || {
                let mut w = lock.handle().unwrap();
                w.set_cohort(0);
                w.lock_write(); // parks in cohort 0 behind the holder
                order.lock().unwrap().push(true);
                w.unlock_write();
            });
        }
        // … and the locals pile up behind the holder before the drain.
        std::thread::sleep(Duration::from_millis(100));
        holder.unlock_write();
    });

    let order = order.lock().unwrap();
    assert_eq!(order.len(), 1 + LOCALS, "every writer completed");
    let remote_at = order
        .iter()
        .position(|local| !local)
        .expect("remote writer acquired");
    assert!(
        remote_at <= BATCH as usize,
        "remote writer waited through {remote_at} local grants, \
         batch bound is {BATCH}: {order:?}"
    );
}

/// Timeout/cancel excision inside the cohort queue: a queued cohort
/// writer that gives up must unlink without losing the grant chain,
/// whether the next grant lands on it mid-cancel or not.
#[test]
fn cohort_writer_timeouts_keep_the_lock_functional() {
    use oll::TimedHandle;
    const THREADS: usize = 4;
    const ITERS: usize = 200;
    let lock = Arc::new(
        FollLock::builder(THREADS)
            .cohort(true)
            .cohort_ranks(2)
            .cohort_batch(2)
            .build(),
    );
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_cohort(tid % 2);
            let mut rng = oll::util::XorShift64::for_thread(0xC0_1EAD, tid);
            for _ in 0..ITERS {
                let timeout = Duration::from_micros(rng.next_below(150));
                if rng.percent(70) {
                    if h.lock_write_timeout(timeout).is_ok() {
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0, "writer not alone");
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                } else if h.lock_read_timeout(timeout).is_ok() {
                    assert!(
                        state.fetch_add(1, Ordering::SeqCst) >= 0,
                        "reader under writer"
                    );
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut h = lock.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    // The write cycle last: a lone reader's node stays queued after its
    // unlock (reader nodes outlive acquisitions), and the writer is what
    // closes and recycles it, letting the queue drain empty.
    h.lock_write();
    h.unlock_write();
    assert!(lock.is_queue_empty());
}

/// Directed race at the cohort release's local-vs-remote decision: the
/// releaser reads a nil `qnext`, and the fault plan widens the window
/// before its tail CAS so a new local writer can enqueue exactly there.
/// Whichever way each race lands — local hand-off to the late arrival
/// or global release — the lock must stay functional and drain empty.
#[cfg(feature = "fault-injection")]
#[test]
fn cohort_tail_cas_race_under_fault_injection() {
    use oll::util::fault::FaultPlan;
    use oll::TimedHandle;

    // The fault plan is process-global; `fault_injection.rs` serializes
    // its tests the same way, and this file has only one plan user.
    const THREADS: usize = 5;
    const ITERS: usize = 300;
    let _plan = FaultPlan::sometimes(0xC0_0410, "cohort", 60, 8).install();

    let lock = Arc::new(
        FollLock::builder(THREADS)
            .cohort(true)
            .cohort_ranks(2)
            .cohort_batch(2)
            .build(),
    );
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            h.set_cohort(tid % 2);
            let mut rng = oll::util::XorShift64::for_thread(0xC0_0411, tid);
            for _ in 0..ITERS {
                if rng.percent(80) {
                    h.lock_write();
                    assert_eq!(state.swap(-1, Ordering::SeqCst), 0, "writer not alone");
                    state.store(0, Ordering::SeqCst);
                    h.unlock_write();
                } else {
                    let timeout = Duration::from_micros(rng.next_below(100));
                    if h.lock_write_timeout(timeout).is_ok() {
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0, "writer not alone");
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    assert!(lock.is_queue_empty());
}
