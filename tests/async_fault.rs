//! The lost-wakeup regression the waker protocol exists to prevent:
//! a grant landing in the window between a pending poll registering its
//! task waker and returning `Pending`. The fault plan stretches exactly
//! that window (the `async.*.pending-window` sites sit after a
//! successful `WakerSlot::register` and before the post-register grant
//! re-check), so across 1000 seeded iterations the hand-off repeatedly
//! lands inside it. If the re-check were missing, the task would sleep
//! forever on a grant that already happened and `wait_idle` would hang.
//!
//! Run with `cargo test --features async,fault-injection --test
//! async_fault`. Without both features this file compiles to nothing.

#![cfg(all(feature = "async", feature = "fault-injection", not(loom)))]

use oll::util::fault::FaultPlan;
use oll::workloads::async_exec::Executor;
use oll::AsyncRwLock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// The fault plan is process-global; serialize the tests that install one.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One iteration: hold the write gate, let a task queue and (with
/// injected yields) dawdle inside the register→Pending window, release
/// the gate so the grant races the window, and demand the task still
/// completes. 1000 seeded iterations walk the yield schedule across the
/// window; a lost wakeup hangs `wait_idle` (and the test times out)
/// rather than failing an assertion.
fn grant_vs_register_race(site_filter: &str, write_task: bool, seed: u64) {
    const ITERS: usize = 1000;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(seed, site_filter, 60, 8).install();

    let lock = Arc::new(AsyncRwLock::new(0u64));
    let exec = Executor::new(2);
    let grants = Arc::new(AtomicU64::new(0));
    for i in 0..ITERS {
        let gate = lock.try_write().expect("gate is uncontended");
        {
            let lock = Arc::clone(&lock);
            let grants = Arc::clone(&grants);
            exec.spawn(async move {
                if write_task {
                    *lock.write().await += 1;
                } else {
                    std::hint::black_box(*lock.read().await);
                }
                grants.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Wait until the task has queued, then fire the grant into the
        // (possibly stretched) register window.
        while lock.queued_waiters() == 0 {
            std::thread::yield_now();
        }
        drop(gate);
        exec.wait_idle();
        assert_eq!(
            grants.load(Ordering::Relaxed),
            (i + 1) as u64,
            "task neither granted nor woken"
        );
        assert_eq!(lock.queued_waiters(), 0);
        assert_eq!(lock.csnzi_snapshot().surplus(), 0);
    }
    assert_eq!(
        *lock.try_read().expect("free"),
        if write_task { ITERS as u64 } else { 0 }
    );
}

#[test]
fn read_grant_races_waker_registration() {
    grant_vs_register_race("async.read.pending-window", false, 0xA11C_E5ED);
}

#[test]
fn write_grant_races_waker_registration() {
    grant_vs_register_race("async.write.pending-window", true, 0xB0B5_EEDB);
}

/// The before-queue-mutex sites widen the window between the failed
/// fast path and joining the queue, so the gate's release sweeps across
/// the enqueue itself (the open re-check under the mutex must retry the
/// fast path rather than strand the task behind an open lock).
#[test]
fn release_races_the_enqueue() {
    const ITERS: usize = 1000;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(0xEB_B10C, "async.read.before-queue-mutex", 60, 8).install();

    let lock = Arc::new(AsyncRwLock::new(0u64));
    let exec = Executor::new(2);
    let grants = Arc::new(AtomicU64::new(0));
    for i in 0..ITERS {
        let gate = lock.try_write().expect("gate is uncontended");
        {
            let lock = Arc::clone(&lock);
            let grants = Arc::clone(&grants);
            exec.spawn(async move {
                std::hint::black_box(*lock.read().await);
                grants.fetch_add(1, Ordering::Relaxed);
            });
        }
        // No queued-waiter handshake here: drop the gate immediately so
        // the release lands anywhere in the task's acquisition path —
        // before the fast-path retry, inside the widened pre-mutex
        // window, or after the enqueue.
        std::thread::yield_now();
        drop(gate);
        exec.wait_idle();
        assert_eq!(grants.load(Ordering::Relaxed), (i + 1) as u64);
        assert_eq!(lock.queued_waiters(), 0);
        assert_eq!(lock.csnzi_snapshot().surplus(), 0);
    }
}
