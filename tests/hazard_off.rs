//! The other half of the hazard contract: without the `hazard` feature
//! the facade is zero-sized, every hook compiles to nothing, and no
//! poison, wait-for edge, or watchdog state is ever produced.

#![cfg(not(feature = "hazard"))]

use oll::hazard::{Hazard, PoisonPolicy};
use oll::{GollLock, RwHandle, RwLockFamily, WatchedHandle};
use std::time::{Duration, Instant};

#[test]
fn facade_is_zero_sized() {
    assert!(!Hazard::enabled());
    assert_eq!(std::mem::size_of::<Hazard>(), 0);
}

#[test]
fn every_hook_is_inert() {
    let h = Hazard::new();
    assert!(!h.is_active());
    assert_eq!(h.lock_id(), 0);
    h.set_poison_policy(PoisonPolicy::Poison);
    assert_eq!(h.poison_policy(), PoisonPolicy::Ignore);
    h.poison();
    assert!(!h.is_poisoned());
    h.clear_poison();
    h.on_guard_acquire(true);
    h.on_guard_drop(true);
    h.detect_deadlocks(true);
    assert!(!h.detects_deadlocks());
    assert!(h.watch_interval().is_none());
    h.begin_wait();
    assert!(!h.deadlock_check());
    h.cancel_wait();
    h.note_writer_stall(Duration::from_secs(60));
    assert_eq!(h.stall_level(), 0);
    h.note_progress(true);
    assert!(h.bias_allowed());
}

#[test]
fn locks_hand_out_inert_hazards_and_never_poison() {
    let lock = GollLock::new(2);
    let h = lock.hazard();
    h.set_poison_policy(PoisonPolicy::Poison);
    let mut a = lock.handle().unwrap();
    let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _g = a.write();
        panic!("holder dies");
    }));
    assert!(panicked.is_err());
    // The guard's drop released the lock; nothing was poisoned.
    assert!(!lock.hazard().is_poisoned());
    let Ok(g) = a.write_checked() else {
        panic!("checked acquisition reported poison with hazard off");
    };
    drop(g);
}

#[test]
fn watched_acquisitions_collapse_to_plain_deadline_waits() {
    let lock = GollLock::new(2);
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();
    // Free lock: granted immediately.
    a.lock_write_watched(Instant::now() + Duration::from_secs(5))
        .unwrap();
    // Contended: a single plain deadline wait, no hazard slicing.
    let start = Instant::now();
    let err = b
        .lock_write_watched(Instant::now() + Duration::from_millis(20))
        .unwrap_err();
    assert_eq!(err, oll::AcquireError::TimedOut);
    assert!(start.elapsed() < Duration::from_secs(5));
    a.unlock_write();
}
