//! Drop-cancellation chaos for the async lock family, mirroring
//! `tests/chaos.rs`: queue ten thousand futures behind a write gate,
//! drop a seeded-random half of them mid-wait, and demand that the
//! grant cascade skips every tombstone, completes every survivor, and
//! leaves the C-SNZI surplus and wait queue at exactly zero.
//!
//! Run with `cargo test --features async --test async_chaos`. Without
//! the feature this file compiles to nothing.

#![cfg(all(feature = "async", not(loom)))]

use oll::util::XorShift64;
use oll::{AsyncReadGuard, AsyncRwLock, AsyncWriteGuard, ReadFuture, WriteFuture};
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};

/// A waker that records the wake in a flag, so the single-threaded
/// driver below knows which futures are ready to re-poll.
struct FlagWaker(Arc<AtomicBool>);

impl Wake for FlagWaker {
    fn wake(self: Arc<Self>) {
        self.0.store(true, Ordering::Release);
    }
}

enum Pending<'a> {
    Read(ReadFuture<'a, u64>),
    Write(WriteFuture<'a, u64>),
}

enum Granted<'a> {
    Read(AsyncReadGuard<'a, u64>),
    Write(AsyncWriteGuard<'a, u64>),
}

impl<'a> Pending<'a> {
    fn poll(&mut self, cx: &mut Context<'_>) -> Poll<Granted<'a>> {
        match self {
            Pending::Read(f) => Pin::new(f).poll(cx).map(Granted::Read),
            Pending::Write(f) => Pin::new(f).poll(cx).map(Granted::Write),
        }
    }
}

#[test]
fn drop_half_mid_wait_rest_complete() {
    const FUTURES: usize = 10_000;
    const WRITE_EVERY: usize = 10;

    let lock = AsyncRwLock::new(0u64);
    let gate = lock.try_write().expect("uncontended gate");

    // Queue 10k acquisitions (every tenth a writer) by polling each
    // future once against the held gate.
    let mut slots: Vec<(Option<Pending<'_>>, Arc<AtomicBool>)> = Vec::with_capacity(FUTURES);
    for i in 0..FUTURES {
        let mut fut = if i % WRITE_EVERY == 0 {
            Pending::Write(lock.write())
        } else {
            Pending::Read(lock.read())
        };
        let flag = Arc::new(AtomicBool::new(false));
        let waker = Waker::from(Arc::new(FlagWaker(Arc::clone(&flag))));
        let mut cx = Context::from_waker(&waker);
        assert!(
            fut.poll(&mut cx).is_pending(),
            "future {i} granted under the gate"
        );
        slots.push((Some(fut), flag));
    }
    assert_eq!(lock.queued_waiters(), FUTURES);

    // Drop a seeded-random ~50% mid-wait. Their Drop impls tombstone
    // the queue nodes; the nodes stay queued until the cascade.
    let mut rng = XorShift64::new(0x5eed_c0de);
    let mut dropped = 0usize;
    let mut surviving_writers = 0usize;
    for (i, (fut, _)) in slots.iter_mut().enumerate() {
        if rng.percent(50) {
            *fut = None; // Drop runs here, mid-wait.
            dropped += 1;
        } else if i % WRITE_EVERY == 0 {
            surviving_writers += 1;
        }
    }
    assert!(dropped > FUTURES / 3, "seed produced a degenerate split");
    // Tombstones still occupy the queue.
    assert_eq!(lock.queued_waiters(), FUTURES);

    // Open the gate: the cascade must grant every survivor and undo
    // every tombstone's pre-arrival. Drive the survivors to completion
    // single-threaded, re-polling whichever futures have been woken.
    drop(gate);
    let mut completed = 0usize;
    let mut sweeps = 0usize;
    while completed < FUTURES - dropped {
        sweeps += 1;
        assert!(
            sweeps <= FUTURES,
            "no forward progress: {completed}/{} after {sweeps} sweeps",
            FUTURES - dropped
        );
        let mut progressed = false;
        for (slot, flag) in slots.iter_mut() {
            let Some(fut) = slot else { continue };
            if !flag.swap(false, Ordering::AcqRel) {
                continue;
            }
            let waker = Waker::from(Arc::new(FlagWaker(Arc::clone(flag))));
            let mut cx = Context::from_waker(&waker);
            match fut.poll(&mut cx) {
                Poll::Ready(granted) => {
                    match granted {
                        Granted::Write(mut g) => *g += 1,
                        Granted::Read(g) => {
                            std::hint::black_box(*g);
                        }
                    };
                    // Guard drops here, cascading the next grant.
                    *slot = None;
                    completed += 1;
                    progressed = true;
                }
                Poll::Pending => {}
            }
        }
        assert!(progressed, "woken set drained without any completion");
    }

    // Exit state: every survivor completed, every write landed, and
    // nothing leaked through the tombstone cascade.
    assert_eq!(completed, FUTURES - dropped);
    assert_eq!(lock.queued_waiters(), 0, "queue must drain to zero");
    assert_eq!(lock.csnzi_snapshot().surplus(), 0, "surplus must be zero");
    let final_value = *lock.try_read().expect("lock is free");
    assert_eq!(
        final_value as usize, surviving_writers,
        "every surviving writer incremented exactly once"
    );
    // And the lock is fully functional.
    drop(lock.try_write().expect("lock is free"));
}
