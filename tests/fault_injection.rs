//! Seeded fault-injection suites: deterministically widen the
//! timeout-vs-hand-off windows in the lock slow paths and hammer them.
//!
//! Run with `cargo test --features fault-injection --test fault_injection`.
//! Without the feature this file compiles to nothing (the `inject` sites in
//! the locks are no-ops, so there would be nothing to test).
#![cfg(feature = "fault-injection")]

use oll::util::fault::FaultPlan;
use oll::{Bravo, FollLock, GollLock, RollLock, RwHandle, RwLockFamily, TimedHandle};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The fault plan is process-global; serialize the tests that install one.
fn serial() -> MutexGuard<'static, ()> {
    static GATE: Mutex<()> = Mutex::new(());
    GATE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The directed race the tentpole asks for: a reader's timeout expiring at
/// the same moment the writer's release hands the lock to that reader.
/// The plan stretches the cancellation-side windows (between the wait
/// giving up and the cancel re-arbitrating) so the hand-off lands inside
/// them; 1000 iterations with a fixed seed walk a deterministic schedule
/// of widened windows. Whichever side wins each race, the lock must end
/// every iteration fully functional.
fn timeout_vs_handoff_race<L>(lock: L, site_filter: &str, seed: u64)
where
    L: RwLockFamily + Send + Sync + 'static,
    for<'a> L::Handle<'a>: TimedHandle,
{
    const ITERS: usize = 1000;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(seed, site_filter, 60, 8).install();

    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    for i in 0..ITERS {
        let mut w = lock.handle().unwrap();
        w.lock_write();
        state.store(-1, Ordering::SeqCst);

        let reader = {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            // Vary the timeout so the expiry sweeps across the release.
            let timeout = Duration::from_micros((i % 40) as u64);
            std::thread::spawn(move || {
                let mut r = lock.handle().unwrap();
                if r.lock_read_timeout(timeout).is_ok() {
                    // Granted: the writer must already be out.
                    assert!(
                        state.load(Ordering::SeqCst) >= 0,
                        "read granted under writer"
                    );
                    r.unlock_read();
                    true
                } else {
                    false
                }
            })
        };

        // Release roughly when the reader's timeout expires; the injected
        // yields inside the reader's cancel path do the fine aiming.
        std::thread::yield_now();
        state.store(0, Ordering::SeqCst);
        w.unlock_write();
        let _timed_out = reader.join().unwrap();

        // The lock must be fully functional whichever side won.
        let mut h = lock.handle().unwrap();
        h.lock_write();
        h.unlock_write();
        h.lock_read();
        h.unlock_read();
    }
}

#[test]
fn goll_timeout_vs_handoff_1000_iters() {
    timeout_vs_handoff_race(GollLock::new(8), "goll.read", 0x5EED_0001);
}

#[test]
fn foll_timeout_vs_handoff_1000_iters() {
    timeout_vs_handoff_race(FollLock::new(8), "foll.read", 0x5EED_0002);
}

#[test]
fn roll_timeout_vs_handoff_1000_iters() {
    timeout_vs_handoff_race(RollLock::new(8), "roll.read", 0x5EED_0003);
}

/// FOLL's hardest cancellation window: a queued writer closes the reader
/// node, making the timing-out reader the *last departer* (`MustHandOff`).
/// The plan widens both the reader's cancel-vs-grant arbitration and the
/// hand-off path of normal departures.
#[test]
fn foll_cancel_vs_close_race() {
    const ITERS: usize = 400;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(0x5EED_0004, "foll", 50, 6).install();

    let lock = Arc::new(FollLock::new(8));
    for i in 0..ITERS {
        let mut w1 = lock.handle().unwrap();
        w1.lock_write();

        let reader = {
            let lock = Arc::clone(&lock);
            let timeout = Duration::from_micros((i % 60) as u64);
            std::thread::spawn(move || {
                let mut r = lock.handle().unwrap();
                if r.lock_read_timeout(timeout).is_ok() {
                    r.unlock_read();
                }
            })
        };
        let w2 = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                let mut w = lock.handle().unwrap();
                w.lock_write();
                w.unlock_write();
            })
        };

        std::thread::yield_now();
        w1.unlock_write();
        reader.join().unwrap();
        w2.join().unwrap();

        let mut h = lock.handle().unwrap();
        h.lock_write();
        h.unlock_write();
    }
    assert!(lock.is_queue_empty());
}

/// Timed writers abandoning queue nodes while other writers churn: the
/// abandoned-node takeover (grant cascade → RELEASED → reclaim) must
/// never lose the queue. Exercises `foll.write.*` windows.
fn abandoned_writer_churn<L>(lock: L, site_filter: &str, seed: u64)
where
    L: RwLockFamily + Send + Sync + 'static,
    for<'a> L::Handle<'a>: TimedHandle,
{
    const THREADS: usize = 5;
    const ITERS: usize = 300;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(seed, site_filter, 50, 6).install();

    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    let mut threads = Vec::new();
    for tid in 0..THREADS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            let mut rng = oll_util::XorShift64::for_thread(seed, tid);
            for _ in 0..ITERS {
                let timeout = Duration::from_micros(rng.next_below(200));
                if rng.percent(50) {
                    if h.lock_write_timeout(timeout).is_ok() {
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                } else if h.lock_read_timeout(timeout).is_ok() {
                    assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                }
            }
        }));
    }
    for t in threads {
        t.join().unwrap();
    }
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
}

#[test]
fn foll_abandoned_writer_churn() {
    abandoned_writer_churn(FollLock::new(8), "foll.write", 0x5EED_0005);
}

#[test]
fn roll_abandoned_writer_churn() {
    abandoned_writer_churn(RollLock::new(8), "foll.write", 0x5EED_0006);
}

#[test]
fn goll_writer_cancel_churn() {
    abandoned_writer_churn(GollLock::new(8), "goll.write", 0x5EED_0007);
}

/// The BRAVO revocation race, directed: fast-path readers publishing
/// into the visible-readers table while a writer clears `rbias` and
/// scans them out. The plan widens the reader's publish→recheck window
/// (`bravo.read.published`) and the writer's clear→scan window
/// (`bravo.write.revoke-scan`) — the exact store-buffering pattern whose
/// `SeqCst` fences keep a reader and writer from both proceeding. The
/// zero multiplier lets slow-path readers re-arm the bias immediately,
/// so the race re-runs every iteration instead of settling unbiased.
#[test]
fn bravo_readers_vs_revoking_writer_race() {
    const READERS: usize = 3;
    const WRITER_ITERS: usize = 400;
    let _guard = serial();
    let _plan = FaultPlan::sometimes(0x5EED_0008, "bravo", 60, 8).install();

    let lock = Arc::new(
        Bravo::wrapping(GollLock::new(8), true)
            .private_table(64)
            .rearm_multiplier(0),
    );
    let state = Arc::new(AtomicI64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..READERS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                h.lock_read();
                assert!(
                    state.fetch_add(1, Ordering::SeqCst) >= 0,
                    "reader entered beside the revoking writer"
                );
                state.fetch_sub(1, Ordering::SeqCst);
                h.unlock_read();
            }
        }));
    }
    {
        let mut w = lock.handle().unwrap();
        for _ in 0..WRITER_ITERS {
            w.lock_write();
            assert_eq!(
                state.swap(-1, Ordering::SeqCst),
                0,
                "writer entered beside a published reader"
            );
            state.store(0, Ordering::SeqCst);
            w.unlock_write();
        }
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    // The lock must come out fully functional, bias machinery intact.
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    h.lock_read();
    h.unlock_read();
}

/// Runs `f`, swallowing only the fault layer's *injected* panics;
/// anything else (assertion failures inside the closure, lock misuse
/// panics) is resumed so it still fails the test.
fn run_swallowing_injected(f: impl FnOnce()) {
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied());
        if !msg.is_some_and(|m| m.starts_with("injected panic")) {
            std::panic::resume_unwind(payload);
        }
    }
}

/// Silences the default panic-hook report for injected panics (several
/// hundred per run below); everything else reports as before.
fn quiet_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.starts_with("injected panic")) {
                return;
            }
            prev(info);
        }));
    });
}

/// The robustness satellite's directed race: biased fast readers
/// *panicking* at their publish→recheck window while a writer runs the
/// revocation scan. The reader's unwind must erase its published slot —
/// if it ever leaks, the writer's scan (`spin_until` on the slot) hangs
/// this test. Panics at the writer's own revoke sites are also drawn,
/// proving the unwinding writer releases the inner write hold instead of
/// stranding the readers. The zero re-arm multiplier keeps the bias
/// re-arming so the race repeats every iteration.
#[test]
fn bravo_revocation_vs_panicking_biased_readers() {
    const READERS: usize = 3;
    const WRITER_ITERS: usize = 400;
    let _guard = serial();
    quiet_injected_panics();
    let plan = FaultPlan::sometimes(0x5EED_0009, "bravo", 40, 6)
        .with_panic_percent(20)
        .install();

    let lock = Arc::new(
        Bravo::wrapping(GollLock::new(8), true)
            .private_table(64)
            .rearm_multiplier(0),
    );
    let state = Arc::new(AtomicI64::new(0));
    let stop = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();
    for _ in 0..READERS {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                run_swallowing_injected(|| {
                    h.lock_read();
                    assert!(
                        state.fetch_add(1, Ordering::SeqCst) >= 0,
                        "reader entered beside the revoking writer"
                    );
                    state.fetch_sub(1, Ordering::SeqCst);
                    h.unlock_read();
                });
            }
        }));
    }
    {
        let mut w = lock.handle().unwrap();
        for _ in 0..WRITER_ITERS {
            run_swallowing_injected(|| {
                w.lock_write();
                assert_eq!(
                    state.swap(-1, Ordering::SeqCst),
                    0,
                    "writer entered beside a published reader"
                );
                state.store(0, Ordering::SeqCst);
                w.unlock_write();
            });
        }
    }
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().unwrap();
    }
    // Injection off for the post-mortem: the lock must be fully
    // functional, with no panicking holder having stranded a slot.
    drop(plan);
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    h.lock_read();
    h.unlock_read();
}

/// The adaptive C-SNZI's unwind coverage: panics drawn at the inflation
/// sync point (deflation's is yield-only — it sits after the arrival
/// already committed) plus yields at both must never wedge the tree —
/// arrivals keep landing and the lock keeps serving both modes.
#[test]
fn adaptive_csnzi_survives_inflate_deflate_panics() {
    const ITERS: usize = 400;
    let _guard = serial();
    quiet_injected_panics();
    let plan = FaultPlan::sometimes(0x5EED_000A, "csnzi", 30, 4)
        .with_panic_percent(20)
        .install();

    let lock = Arc::new(GollLock::builder(4).adaptive(true).build());
    let stop = Arc::new(AtomicBool::new(false));
    let churn = {
        let lock = Arc::clone(&lock);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut h = lock.handle().unwrap();
            while !stop.load(Ordering::Relaxed) {
                run_swallowing_injected(|| {
                    h.lock_read();
                    h.unlock_read();
                });
            }
        })
    };
    {
        let mut h = lock.handle().unwrap();
        for _ in 0..ITERS {
            run_swallowing_injected(|| {
                h.lock_read();
                h.unlock_read();
            });
            run_swallowing_injected(|| {
                h.lock_write();
                h.unlock_write();
            });
        }
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    drop(plan);
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    h.lock_read();
    h.unlock_read();
}

/// The tentpole's directed race: N threads simultaneously route their
/// first arrival through an adaptive C-SNZI that has never built its
/// tree. The injected yields at the `csnzi.inflate` sync point widen the
/// window in which several threads observe the tree as inactive; only
/// one may win the activation, every arrival must still land, and no
/// surplus may be lost across the race.
#[test]
fn first_inflation_race_builds_one_tree_and_loses_no_arrivals() {
    use oll::csnzi::{ArrivalPolicy, CSnzi};

    const THREADS: usize = 8;
    const ROUNDS: usize = 50;
    let _guard = serial();
    let _plan = FaultPlan::every(0x1F1A7E, "csnzi.inflate", 6).install();
    for round in 0..ROUNDS {
        let telemetry = oll::telemetry::Telemetry::register("CSNZI");
        let c = {
            let mut c = CSnzi::new_adaptive(THREADS);
            c.attach_telemetry(telemetry.clone());
            Arc::new(c)
        };
        assert!(!c.is_inflated(), "round {round}: starts root-only");
        let barrier = Arc::new(std::sync::Barrier::new(THREADS));
        let mut joins = Vec::new();
        for t in 0..THREADS {
            let c = Arc::clone(&c);
            let barrier = Arc::clone(&barrier);
            joins.push(std::thread::spawn(move || {
                let mut p = ArrivalPolicy::always_tree();
                barrier.wait();
                let ticket = c.arrive(&mut p, t);
                assert!(ticket.arrived(), "arrival lost in inflation race");
                ticket
            }));
        }
        let tickets: Vec<_> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert!(c.is_inflated(), "round {round}: tree not activated");
        assert!(c.query().nonzero, "round {round}: surplus lost");
        for t in tickets {
            c.depart(t);
        }
        assert!(!c.query().nonzero, "round {round}: departures unbalanced");
        // In telemetry builds, pin "exactly one tree built": only the
        // activation winner records the inflation.
        if let Some(s) = telemetry.snapshot() {
            use oll::telemetry::LockEvent;
            assert_eq!(
                s.get(LockEvent::CsnziInflate),
                1,
                "round {round}: exactly one tree built"
            );
            assert!(
                s.get(LockEvent::CsnziNodeWrite) > 0,
                "round {round}: no tree RMWs"
            );
        }
    }
}
