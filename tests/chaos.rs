//! Chaos campaigns for the hazard layer: panicking lock holders must
//! never strand other threads, poison marks must follow the policy, and
//! a real wait-for cycle must be reported as a deadlock instead of
//! hanging.
//!
//! Run with `cargo test --features hazard --test chaos`. Without the
//! feature this file compiles to nothing (the hooks it exercises are
//! zero-sized no-ops, so there would be nothing to test).

#![cfg(all(feature = "hazard", not(loom)))]

use oll::hazard::PoisonPolicy;
use oll::workloads::LockKind;
use oll::{
    AcquireError, Bravo, CentralizedRwLock, FollLock, GollLock, KsuhLock, McsMutex, McsRwLock,
    McsRwReaderPref, McsRwWriterPref, PerThreadRwLock, RollLock, RwHandle, RwLockFamily,
    SolarisLikeRwLock, StdRwLock, WatchedHandle,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

const ITERS: usize = 1000;

/// Silences the default panic-hook report for the campaign's own
/// injected panics (15k of them across the suite would drown real
/// failures); everything else still reports through the previous hook.
fn quiet_chaos_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied());
            if msg.is_some_and(|m| m.starts_with("chaos:")) {
                return;
            }
            prev(info);
        }));
    });
}

/// The campaign: one thread panics inside its critical section `ITERS`
/// times (mode chosen by a seeded PRNG) while a partner thread keeps
/// acquiring the same lock. Every panic must unwind through the guard
/// without stranding the partner, write panics must poison (and only
/// they), and the lock must stay fully functional throughout.
fn chaos_campaign<L>(lock: L, seed: u64, name: &str)
where
    L: RwLockFamily,
{
    quiet_chaos_panics();
    let hz = lock.hazard();
    hz.set_poison_policy(PoisonPolicy::Poison);
    assert!(!hz.is_poisoned(), "{name}: fresh lock poisoned");

    let stop = AtomicBool::new(false);
    let partner_laps = AtomicU64::new(0);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut h = lock.handle().expect("partner handle");
            while !stop.load(Ordering::Relaxed) {
                // Unchecked acquisitions: the partner does not care about
                // poison, only that it is never stranded.
                let g = h.read();
                drop(g);
                let g = h.write();
                drop(g);
                partner_laps.fetch_add(1, Ordering::Relaxed);
            }
        });

        let mut h = lock.handle().expect("chaos handle");
        let mut rng = oll::util::XorShift64::for_thread(seed, 0);
        for i in 0..ITERS {
            let write = rng.percent(50);
            let unwound = catch_unwind(AssertUnwindSafe(|| {
                if write {
                    let _g = h.write();
                    panic!("chaos: write holder dies (iter {i})");
                } else {
                    let _g = h.read();
                    panic!("chaos: read holder dies (iter {i})");
                }
            }));
            assert!(unwound.is_err(), "{name}: panic did not propagate");
            // Only a panicking *write* holder poisons.
            assert_eq!(
                hz.is_poisoned(),
                write,
                "{name}: wrong poison state after {} panic (iter {i})",
                if write { "write" } else { "read" },
            );
            if write {
                let Err(err) = h.write_checked() else {
                    panic!("{name}: poison mark not surfaced to write_checked");
                };
                // The checked acquirer still got the lock; recover.
                hz.clear_poison();
                drop(err.into_inner());
                assert!(h.write_checked().is_ok(), "{name}: clear_poison failed");
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    assert!(
        partner_laps.load(Ordering::Relaxed) > 0,
        "{name}: partner made no progress through {ITERS} panics"
    );

    // The lock must come out of the campaign fully functional.
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    h.lock_read();
    h.unlock_read();
}

fn family(kind: LockKind, seed: u64) {
    let cap = 4;
    match kind {
        LockKind::Goll => chaos_campaign(GollLock::new(cap), seed, kind.name()),
        LockKind::Foll => chaos_campaign(FollLock::new(cap), seed, kind.name()),
        LockKind::Roll => chaos_campaign(RollLock::new(cap), seed, kind.name()),
        LockKind::Ksuh => chaos_campaign(KsuhLock::new(cap), seed, kind.name()),
        LockKind::SolarisLike => chaos_campaign(SolarisLikeRwLock::new(cap), seed, kind.name()),
        LockKind::Centralized => chaos_campaign(CentralizedRwLock::new(cap), seed, kind.name()),
        LockKind::McsRw => chaos_campaign(McsRwLock::new(cap), seed, kind.name()),
        LockKind::McsRwReaderPref => chaos_campaign(McsRwReaderPref::new(cap), seed, kind.name()),
        LockKind::McsRwWriterPref => chaos_campaign(McsRwWriterPref::new(cap), seed, kind.name()),
        LockKind::PerThread => chaos_campaign(PerThreadRwLock::new(cap), seed, kind.name()),
        LockKind::StdRw => chaos_campaign(StdRwLock::new(cap), seed, kind.name()),
        LockKind::McsMutex => chaos_campaign(McsMutex::new(cap), seed, kind.name()),
    }
}

#[test]
fn goll_1000_panics() {
    family(LockKind::Goll, 0xC4A0_0001);
}

#[test]
fn foll_1000_panics() {
    family(LockKind::Foll, 0xC4A0_0002);
}

#[test]
fn roll_1000_panics() {
    family(LockKind::Roll, 0xC4A0_0003);
}

#[test]
fn ksuh_1000_panics() {
    family(LockKind::Ksuh, 0xC4A0_0004);
}

#[test]
fn solaris_like_1000_panics() {
    family(LockKind::SolarisLike, 0xC4A0_0005);
}

#[test]
fn centralized_1000_panics() {
    family(LockKind::Centralized, 0xC4A0_0006);
}

#[test]
fn mcs_rw_1000_panics() {
    family(LockKind::McsRw, 0xC4A0_0007);
}

#[test]
fn mcs_rw_reader_pref_1000_panics() {
    family(LockKind::McsRwReaderPref, 0xC4A0_0008);
}

#[test]
fn mcs_rw_writer_pref_1000_panics() {
    family(LockKind::McsRwWriterPref, 0xC4A0_0009);
}

#[test]
fn per_thread_1000_panics() {
    family(LockKind::PerThread, 0xC4A0_000A);
}

#[test]
fn std_rw_1000_panics() {
    family(LockKind::StdRw, 0xC4A0_000B);
}

#[test]
fn mcs_mutex_1000_panics() {
    family(LockKind::McsMutex, 0xC4A0_000C);
}

/// The biased fast path adds its own unwind hazard: a panicking fast
/// reader has *published* into the visible-readers table, and the entry
/// must be erased during the unwind or every later revocation scan spins
/// forever.
#[test]
fn bravo_biased_families_1000_panics() {
    chaos_campaign(
        Bravo::wrapping(GollLock::new(4), true).private_table(64),
        0xC4A0_000D,
        "Bravo<GOLL>",
    );
    chaos_campaign(
        Bravo::wrapping(FollLock::new(4), true).private_table(64),
        0xC4A0_000E,
        "Bravo<FOLL>",
    );
    chaos_campaign(
        Bravo::wrapping(RollLock::new(4), true).private_table(64),
        0xC4A0_000F,
        "Bravo<ROLL>",
    );
}

/// The acceptance cycle: two locks, two threads, opposite acquisition
/// orders (ABBA). Both inner waits can never be granted; the watched
/// acquisition must report `DeadlockDetected` well before its deadline
/// instead of timing out (or hanging a plain blocking wait).
#[test]
fn abba_cycle_is_reported_as_deadlock() {
    let a = GollLock::new(2);
    let b = GollLock::new(2);
    for lock in [&a, &b] {
        lock.hazard().detect_deadlocks(true);
        // One watch interval is the detection latency floor; keep the
        // deadline comfortably above it and assert detection at a
        // fraction of the deadline.
        lock.hazard().set_watch_interval(Duration::from_millis(1));
    }
    let deadline = Duration::from_secs(20);

    let barrier = std::sync::Barrier::new(2);
    let (r1, r2) = std::thread::scope(|scope| {
        let t1 = scope.spawn(|| {
            let mut ha = a.handle().unwrap();
            let mut hb = b.handle().unwrap();
            let _ga = ha.write();
            barrier.wait();
            let start = Instant::now();
            let r = hb.lock_write_watched(Instant::now() + deadline);
            if r.is_ok() {
                hb.unlock_write();
            }
            (r, start.elapsed())
        });
        let t2 = scope.spawn(|| {
            let mut hb = b.handle().unwrap();
            let mut ha = a.handle().unwrap();
            let _gb = hb.write();
            barrier.wait();
            let start = Instant::now();
            let r = ha.lock_write_watched(Instant::now() + deadline);
            if r.is_ok() {
                ha.unlock_write();
            }
            (r, start.elapsed())
        });
        (t1.join().unwrap(), t2.join().unwrap())
    });

    let mut detected = 0;
    for (r, took) in [r1, r2] {
        match r {
            Err(AcquireError::DeadlockDetected) => {
                detected += 1;
                assert!(
                    took < deadline / 2,
                    "cycle detected only after {took:?} (deadline {deadline:?})"
                );
            }
            // The loser's detection releases nothing by itself, but its
            // return drops the watched wait; the winner is granted once
            // the loser's outer guard drops at scope exit — so a
            // successful grant is also a legal outcome for one side.
            Ok(()) => {}
            Err(AcquireError::TimedOut) => panic!("watched wait timed out instead of detecting"),
        }
    }
    assert!(detected >= 1, "neither side reported the ABBA cycle");

    // Both locks are fully usable afterwards.
    for lock in [&a, &b] {
        let mut h = lock.handle().unwrap();
        h.lock_write();
        h.unlock_write();
    }
}

/// A watched writer stalled behind a long-held read must walk the
/// escalation ladder to degradation, disable the BRAVO bias while
/// degraded, and re-enable it once a write makes progress again.
#[test]
fn starvation_watchdog_degrades_and_recovers() {
    let lock = Bravo::wrapping(GollLock::new(3), true).private_table(64);
    let hz = lock.hazard();
    hz.set_watch_interval(Duration::from_millis(1));
    hz.set_stall_threshold(Duration::from_millis(5));
    assert!(hz.bias_allowed());

    let hold = AtomicBool::new(true);
    let reading = std::sync::Barrier::new(2);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut r = lock.handle().unwrap();
            let g = r.read();
            reading.wait();
            while hold.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
            drop(g);
        });
        reading.wait();

        let mut w = lock.handle().unwrap();
        // The reader never leaves within the deadline: the writer times
        // out, but while stalled it must have escalated to degradation.
        let err = w
            .lock_write_watched(Instant::now() + Duration::from_millis(200))
            .unwrap_err();
        assert_eq!(err, AcquireError::TimedOut);
        assert_eq!(hz.stall_level(), 3, "watchdog did not reach degradation");
        assert!(!hz.bias_allowed(), "degradation must disable the bias");

        // Let the reader go; a granted watched write notes progress and
        // lifts the degradation.
        hold.store(false, Ordering::Relaxed);
        w.lock_write_watched(Instant::now() + Duration::from_secs(20))
            .unwrap();
        w.unlock_write();
    });
    assert!(hz.bias_allowed(), "write progress must restore the bias");
    assert_eq!(hz.stall_level(), 0);
}
