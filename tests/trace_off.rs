//! The other half of the tracing contract: without the `trace` feature
//! the recorder is zero-sized, emission and registration compile to
//! nothing, the clock is never read, and a session collects an empty
//! timeline even while instrumented locks run — the flight recorder
//! costs nothing unless asked for.

#![cfg(not(feature = "trace"))]

use oll::trace::{self, analyze, AnalyzerConfig, TraceKind, TraceSession};
use oll::{FollLock, GollLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock};

#[test]
fn recorder_is_zero_sized_and_disabled() {
    assert!(!trace::enabled());
    assert_eq!(std::mem::size_of::<TraceSession>(), 0);
    // The trace clock is never armed: no epoch, no `Instant` reads.
    assert_eq!(trace::now_ns(), 0);
    // Registration hands back the unattributed id.
    assert_eq!(trace::register_lock("TEST", "off"), 0);
}

#[test]
fn emission_is_inert() {
    trace::emit(1, TraceKind::ReadFast, 7);
    trace::rename_lock(1, "renamed");
    trace::set_thread_ring_capacity(8);
    let session = TraceSession::begin();
    trace::emit(0, TraceKind::Granted, 0xabc);
    let tl = session.collect();
    assert!(tl.records.is_empty());
    assert!(tl.locks.is_empty());
    assert!(tl.threads.is_empty());
    assert!(!tl.truncated());
    assert_eq!(tl.dropped, 0);
}

#[test]
fn telemetry_facade_trace_hooks_are_inert() {
    // These methods exist on the facade in every build; without the
    // `trace` feature they must reach no ring regardless of whether
    // telemetry itself is recording.
    let t = oll::telemetry::Telemetry::register("TEST");
    let timer = t.begin_write();
    t.trace_enqueued(0xbeef);
    t.trace_granted(0xbeef);
    t.record_write_acquire(&timer);
    let hold = t.begin_read();
    t.record_read_hold(&hold);
    assert_eq!(t.trace_id(), None);
    assert!(trace::capture_all().records.is_empty());
}

#[test]
fn instrumented_locks_leave_no_trace() {
    let session = TraceSession::begin();
    let goll = GollLock::new(2);
    let foll = FollLock::new(2);
    let roll = RollLock::new(2);
    let solaris = SolarisLikeRwLock::new(2);
    fn hammer<L: RwLockFamily>(lock: &L) {
        let mut h = lock.handle().unwrap();
        h.lock_read();
        h.unlock_read();
        h.lock_write();
        h.unlock_write();
    }
    hammer(&goll);
    hammer(&foll);
    hammer(&roll);
    hammer(&solaris);
    assert!(session.collect().records.is_empty());
    assert!(trace::capture_all().records.is_empty());
    // The analysis and export layers still compile and run — they just
    // see an empty world, so tooling needs no cfg of its own.
    let tl = session.collect();
    let report = analyze(&tl, &AnalyzerConfig::default());
    assert!(report.acquisitions.is_empty());
    assert!(report.edges.is_empty());
    assert_eq!(report.unmatched_grants, 0);
    assert!(trace::render_chrome_trace(&tl).contains("\"traceEvents\""));
}
