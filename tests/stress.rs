//! Longer randomized stress: handle churn (threads registering and
//! deregistering mid-flight), protected-data consistency through the
//! `RwLock<T>` wrapper, and mixed try/blocking usage.

use oll::{FollLock, GollLock, KsuhLock, RollLock, RwHandle, RwLock, RwLockFamily};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Threads repeatedly register, do a burst of lock operations, and drop
/// their handle — slots and queue nodes must recycle cleanly.
fn handle_churn<L: RwLockFamily + 'static>(lock: L, threads: usize) {
    let lock = Arc::new(lock);
    let state = Arc::new(AtomicI64::new(0));
    let mut joins = Vec::new();
    for tid in 0..threads {
        let lock = Arc::clone(&lock);
        let state = Arc::clone(&state);
        joins.push(std::thread::spawn(move || {
            let mut rng = oll::util::XorShift64::for_thread(808, tid);
            for _round in 0..50 {
                // May transiently fail while other threads hold slots.
                let Ok(mut h) = lock.handle() else {
                    std::thread::yield_now();
                    continue;
                };
                for _ in 0..50 {
                    if rng.percent(75) {
                        h.lock_read();
                        assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                        state.fetch_sub(1, Ordering::SeqCst);
                        h.unlock_read();
                    } else {
                        h.lock_write();
                        assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                        state.store(0, Ordering::SeqCst);
                        h.unlock_write();
                    }
                }
                // handle drops here; slot + nodes return to the pool
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn goll_handle_churn() {
    // Capacity below thread count: forces slot contention and reuse.
    handle_churn(GollLock::new(3), 5);
}

#[test]
fn foll_handle_churn() {
    handle_churn(FollLock::new(3), 5);
}

#[test]
fn roll_handle_churn() {
    handle_churn(RollLock::new(3), 5);
}

#[test]
fn ksuh_handle_churn() {
    handle_churn(KsuhLock::new(3), 5);
}

/// Data-consistency through the wrapper: concurrent increments through
/// write guards are never lost, and read guards always see a consistent
/// pair of fields.
#[test]
fn rwlock_wrapper_data_consistency() {
    #[derive(Default)]
    struct Pair {
        a: u64,
        b: u64, // invariant: b == 2 * a
    }

    const THREADS: usize = 4;
    const PER: usize = 2_000;
    let data = Arc::new(RwLock::new(RollLock::new(THREADS), Pair::default()));
    let mut joins = Vec::new();
    for tid in 0..THREADS {
        let data = Arc::clone(&data);
        joins.push(std::thread::spawn(move || {
            let mut me = data.owner().unwrap();
            let mut rng = oll::util::XorShift64::for_thread(99, tid);
            for _ in 0..PER {
                if rng.percent(60) {
                    let g = me.read();
                    assert_eq!(g.b, 2 * g.a, "torn write observed");
                } else {
                    let mut g = me.write();
                    g.a += 1;
                    // Deliberate torn intermediate state, hidden by the lock.
                    std::hint::black_box(&g.a);
                    g.b = 2 * g.a;
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let mut me = data.owner().unwrap();
    let g = me.read();
    assert_eq!(g.b, 2 * g.a);
    assert!(g.a > 0);
}

/// Mixed try/blocking usage: failed try-locks must leave no residue that
/// blocks later acquisitions.
#[test]
fn try_lock_failures_leave_no_residue() {
    run_try_residue(GollLock::new(4));
    run_try_residue(FollLock::new(4));
    run_try_residue(RollLock::new(4));
    run_try_residue(KsuhLock::new(4));

    fn run_try_residue<L: RwLockFamily + 'static>(lock: L) {
        let lock = Arc::new(lock);
        let state = Arc::new(AtomicI64::new(0));
        let mut joins = Vec::new();
        for tid in 0..4 {
            let lock = Arc::clone(&lock);
            let state = Arc::clone(&state);
            joins.push(std::thread::spawn(move || {
                let mut h = lock.handle().unwrap();
                let mut rng = oll::util::XorShift64::for_thread(31337, tid);
                for _ in 0..1_500 {
                    match rng.next_below(4) {
                        0 => {
                            if h.try_lock_read() {
                                assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                                state.fetch_sub(1, Ordering::SeqCst);
                                h.unlock_read();
                            }
                        }
                        1 => {
                            if h.try_lock_write() {
                                assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                                state.store(0, Ordering::SeqCst);
                                h.unlock_write();
                            }
                        }
                        2 => {
                            h.lock_read();
                            assert!(state.fetch_add(1, Ordering::SeqCst) >= 0);
                            state.fetch_sub(1, Ordering::SeqCst);
                            h.unlock_read();
                        }
                        _ => {
                            h.lock_write();
                            assert_eq!(state.swap(-1, Ordering::SeqCst), 0);
                            state.store(0, Ordering::SeqCst);
                            h.unlock_write();
                        }
                    }
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
    }
}
