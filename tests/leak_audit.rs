//! Leaked-guard audit: `mem::forget` on a guard is safe Rust, so every
//! family must cope with a hold that is never released. The contract
//! this suite pins down:
//!
//! * **Blocking** acquirers may wait forever on a leaked hold — that is
//!   what blocking means — but **`try_*` acquirers must fail fast**, not
//!   spin until the (never-arriving) release.
//! * Where readers share, other readers must still get in beside a
//!   leaked *read* hold.
//!
//! Per-family notes on how a leaked read hold presents:
//!
//! * **GOLL** — the C-SNZI surplus never drains; `try_write`'s
//!   `close_if_empty` fails immediately.
//! * **FOLL / ROLL** — the leaked reader's queue session stays at the
//!   tail; `try_write`'s tail CAS fails immediately.
//! * **KSUH** — the leaked reader node stays queued (`tail != NIL`);
//!   the try paths refuse a non-empty queue.
//! * **MCS-RW** — `reader_count` stays nonzero, failing the emptiness
//!   precheck. The conservative fallback (reached when readers slip in
//!   *between* the precheck and the enqueue) used to block; it now
//!   withdraws the queue node and fails fast unless a successor has
//!   already committed it to the queue.
//! * **MCS-RW-rp / MCS-RW-wp** — the reader count lives in the lock
//!   word; the word CAS fails and the queue candidacy is rolled back.
//! * **Solaris-like / Centralized / std** — a reader-count/word check
//!   fails the CAS (std reports `WouldBlock`).
//! * **Per-thread** — the leaked reader's own mutex stays held; the
//!   writer's all-mutex sweep fails on it and rolls back.
//! * **MCS mutex** — a "read" hold is exclusive; the tail CAS fails.
//! * **BRAVO-wrapped** — a leaked *fast* read hold stays published in
//!   the visible-readers table; `try_write`'s one-shot revocation scan
//!   sights it, restores the bias, and fails without waiting.

use oll::workloads::LockKind;
use oll::{
    Bravo, CentralizedRwLock, FollLock, GollLock, KsuhLock, McsMutex, McsRwLock, McsRwReaderPref,
    McsRwWriterPref, PerThreadRwLock, RollLock, RwHandle, RwLockFamily, SolarisLikeRwLock,
    StdRwLock,
};
use std::time::{Duration, Instant};

/// `try_*` calls beside a leaked hold must return within this bound —
/// generous enough for any scheduler hiccup, far below "spins forever".
const FAIL_FAST: Duration = Duration::from_secs(2);

fn leaked_read_guard_fails_fast<L: RwLockFamily>(lock: L, name: &str, readers_share: bool) {
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();
    std::mem::forget(a.read());

    let start = Instant::now();
    assert!(
        !b.try_lock_write(),
        "{name}: try_write succeeded beside a leaked read hold"
    );
    assert!(
        start.elapsed() < FAIL_FAST,
        "{name}: try_write spun {:?} instead of failing fast",
        start.elapsed()
    );
    if readers_share {
        // A leaked read hold must not shut other readers out. (Some try
        // paths are conservative about queue residue, so probe with the
        // blocking path under a generous watchdog: it either returns
        // quickly or the test harness times the hang out.)
        b.lock_read();
        b.unlock_read();
    }
    // The handle behind the leak still believes it holds the lock (the
    // guard's drop never ran to clear it); its own drop-time leak check
    // would fire. Leak it too — exactly what happens when the leaking
    // thread disappears.
    std::mem::forget(a);
}

fn leaked_write_guard_fails_fast<L: RwLockFamily>(lock: L, name: &str) {
    let mut a = lock.handle().unwrap();
    let mut b = lock.handle().unwrap();
    std::mem::forget(a.write());

    let probe = |what: &str, outcome: &mut dyn FnMut() -> bool| {
        let start = Instant::now();
        let granted = outcome();
        assert!(
            !granted,
            "{name}: {what} succeeded beside a leaked write hold"
        );
        assert!(
            start.elapsed() < FAIL_FAST,
            "{name}: {what} spun instead of failing fast"
        );
    };
    probe("try_write", &mut || b.try_lock_write());
    probe("try_read", &mut || b.try_lock_read());
    // See leaked_read_guard_fails_fast: the leaking handle goes too.
    std::mem::forget(a);
}

fn audit(kind: LockKind) {
    let cap = 4;
    let share = kind.readers_share();
    let name = kind.name();
    match kind {
        LockKind::Goll => {
            leaked_read_guard_fails_fast(GollLock::new(cap), name, share);
            leaked_write_guard_fails_fast(GollLock::new(cap), name);
        }
        LockKind::Foll => {
            leaked_read_guard_fails_fast(FollLock::new(cap), name, share);
            leaked_write_guard_fails_fast(FollLock::new(cap), name);
        }
        LockKind::Roll => {
            leaked_read_guard_fails_fast(RollLock::new(cap), name, share);
            leaked_write_guard_fails_fast(RollLock::new(cap), name);
        }
        LockKind::Ksuh => {
            leaked_read_guard_fails_fast(KsuhLock::new(cap), name, share);
            leaked_write_guard_fails_fast(KsuhLock::new(cap), name);
        }
        LockKind::SolarisLike => {
            leaked_read_guard_fails_fast(SolarisLikeRwLock::new(cap), name, share);
            leaked_write_guard_fails_fast(SolarisLikeRwLock::new(cap), name);
        }
        LockKind::Centralized => {
            leaked_read_guard_fails_fast(CentralizedRwLock::new(cap), name, share);
            leaked_write_guard_fails_fast(CentralizedRwLock::new(cap), name);
        }
        LockKind::McsRw => {
            leaked_read_guard_fails_fast(McsRwLock::new(cap), name, share);
            leaked_write_guard_fails_fast(McsRwLock::new(cap), name);
        }
        LockKind::McsRwReaderPref => {
            leaked_read_guard_fails_fast(McsRwReaderPref::new(cap), name, share);
            leaked_write_guard_fails_fast(McsRwReaderPref::new(cap), name);
        }
        LockKind::McsRwWriterPref => {
            leaked_read_guard_fails_fast(McsRwWriterPref::new(cap), name, share);
            leaked_write_guard_fails_fast(McsRwWriterPref::new(cap), name);
        }
        LockKind::PerThread => {
            leaked_read_guard_fails_fast(PerThreadRwLock::new(cap), name, share);
            leaked_write_guard_fails_fast(PerThreadRwLock::new(cap), name);
        }
        LockKind::StdRw => {
            leaked_read_guard_fails_fast(StdRwLock::new(cap), name, share);
            leaked_write_guard_fails_fast(StdRwLock::new(cap), name);
        }
        LockKind::McsMutex => {
            leaked_read_guard_fails_fast(McsMutex::new(cap), name, share);
            leaked_write_guard_fails_fast(McsMutex::new(cap), name);
        }
    }
}

#[test]
fn every_family_fails_fast_beside_leaked_guards() {
    for kind in LockKind::ALL {
        audit(kind);
    }
}

/// The BRAVO wrapper's own leak hazard: a leaked fast read hold stays
/// published in the visible-readers table forever. `try_write`'s
/// one-shot revocation scan must fail fast on it, and blocking writers
/// must *not* be attempted (they would legitimately wait forever).
#[test]
fn bravo_leaked_fast_reader_fails_try_write_fast() {
    for bias in [false, true] {
        let lock = Bravo::wrapping(GollLock::new(4), bias).private_table(64);
        let mut a = lock.handle().unwrap();
        let mut b = lock.handle().unwrap();
        std::mem::forget(a.read());

        let start = Instant::now();
        assert!(
            !b.try_lock_write(),
            "Bravo<GOLL> (bias={bias}): try_write succeeded beside a leaked reader"
        );
        assert!(
            start.elapsed() < FAIL_FAST,
            "Bravo<GOLL> (bias={bias}): try_write spun on the published slot"
        );
        // Other readers still get in (fast path while the bias holds).
        b.lock_read();
        b.unlock_read();
        // The leaking handle's drop-time leak check would fire; leak it.
        std::mem::forget(a);
    }
}
