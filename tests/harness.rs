//! End-to-end checks of the Figure 5 harness itself: panel sweeps produce
//! complete, well-formed output, and the relationships that should hold
//! on *any* machine (not just the paper's 256-thread T5440) do hold.

use oll::workloads::config::{Fig5Panel, LockKind, LockOptions, WorkloadConfig};
use oll::workloads::report::{factor_at_peak, render_csv, render_table};
use oll::workloads::sweep::{run_panel, SweepOptions};

fn tiny_opts(locks: Vec<LockKind>) -> SweepOptions {
    SweepOptions {
        thread_counts: vec![1, 2, 4],
        locks,
        base: WorkloadConfig {
            threads: 1,
            read_pct: 100,
            acquisitions_per_thread: 1_500,
            critical_work: 0,
            outside_work: 0,
            seed: 0x600D_F00D,
            runs: 1,
            verify: false,
        },
        progress: false,
        collect_telemetry: false,
        lock_options: LockOptions::default(),
    }
}

#[test]
fn every_panel_runs_with_figure5_locks() {
    // One quick point per panel keeps this test minutes-proof.
    let opts = SweepOptions {
        thread_counts: vec![2],
        ..tiny_opts(LockKind::FIGURE5.to_vec())
    };
    for panel in Fig5Panel::ALL {
        let r = run_panel(panel, &opts);
        assert_eq!(r.series.len(), 5);
        for s in &r.series {
            assert_eq!(s.points.len(), 1);
            assert!(s.points[0].acquires_per_sec > 0.0);
            assert_eq!(s.points[0].read_pct, panel.read_pct());
        }
        let table = render_table(&r);
        assert!(table.contains("Figure 5"));
        let csv = render_csv(&r, true);
        assert_eq!(csv.lines().count(), 1 + 5);
    }
}

#[test]
fn read_only_throughput_beats_write_only_for_rw_locks() {
    // At equal thread counts, 100% reads must outperform 0% reads for any
    // reader-writer lock (readers share; writers serialize). This is only
    // observable with real parallelism: on a single hardware thread,
    // concurrent readers cannot overlap, so the two workloads cost the
    // same and the comparison is noise.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 2 {
        eprintln!("skipping shape assertion: single hardware thread (see EXPERIMENTS.md)");
        return;
    }
    let opts = tiny_opts(vec![LockKind::Foll, LockKind::Roll, LockKind::Goll]);
    let read_only = run_panel(Fig5Panel::A, &opts);
    let write_only = run_panel(Fig5Panel::F, &opts);
    for kind in [LockKind::Foll, LockKind::Roll, LockKind::Goll] {
        let r = read_only
            .series_for(kind)
            .unwrap()
            .points
            .last()
            .unwrap()
            .acquires_per_sec;
        let w = write_only
            .series_for(kind)
            .unwrap()
            .points
            .last()
            .unwrap()
            .acquires_per_sec;
        assert!(
            r > w,
            "{}: read-only ({r:.0}/s) should beat write-only ({w:.0}/s) at 4 threads",
            kind.name()
        );
    }
}

#[test]
fn factor_helper_compares_series() {
    let opts = tiny_opts(vec![LockKind::Foll, LockKind::Ksuh]);
    let panel = run_panel(Fig5Panel::A, &opts);
    let f = factor_at_peak(&panel, LockKind::Foll, LockKind::Ksuh).unwrap();
    assert!(f.is_finite() && f > 0.0);
}

#[test]
fn csv_rows_are_parseable() {
    let opts = SweepOptions {
        thread_counts: vec![1, 2],
        ..tiny_opts(vec![LockKind::Goll])
    };
    let panel = run_panel(Fig5Panel::C, &opts);
    let csv = render_csv(&panel, true);
    for line in csv.lines().skip(1) {
        let fields: Vec<&str> = line.split(',').collect();
        assert_eq!(fields.len(), 6, "line: {line}");
        assert_eq!(fields[0], "c");
        assert_eq!(fields[1], "95");
        assert!(fields[3].parse::<usize>().is_ok());
        assert!(fields[4].parse::<f64>().unwrap() > 0.0);
        assert!(fields[5].parse::<f64>().unwrap() > 0.0);
    }
}
