//! Long-running stress tests, `#[ignore]`d by default. Run explicitly:
//!
//! ```sh
//! cargo test --release --test marathon -- --ignored --test-threads 1
//! ```
//!
//! Each marathon runs a verified mixed workload long enough for the
//! scheduler to generate preemption patterns that short tests rarely hit
//! (holders descheduled mid-critical-section, hand-offs landing on
//! sleeping threads, node pools cycling thousands of times).

use oll::workloads::{run_throughput, LockKind, WorkloadConfig};

fn marathon(kind: LockKind, read_pct: u32) {
    let config = WorkloadConfig {
        threads: 8,
        read_pct,
        acquisitions_per_thread: 50_000,
        critical_work: 8,
        outside_work: 4,
        seed: 0xC0FF_EE00,
        runs: 1,
        verify: true,
    };
    let r = run_throughput(kind, &config);
    assert!(r.acquires_per_sec > 0.0);
}

macro_rules! marathon_test {
    ($name:ident, $kind:expr, $pct:expr) => {
        #[test]
        #[ignore = "long-running; invoke with --ignored"]
        fn $name() {
            marathon($kind, $pct);
        }
    };
}

marathon_test!(goll_marathon_read_heavy, LockKind::Goll, 95);
marathon_test!(goll_marathon_mixed, LockKind::Goll, 50);
marathon_test!(foll_marathon_read_heavy, LockKind::Foll, 95);
marathon_test!(foll_marathon_mixed, LockKind::Foll, 50);
marathon_test!(roll_marathon_read_heavy, LockKind::Roll, 95);
marathon_test!(roll_marathon_mixed, LockKind::Roll, 50);
marathon_test!(ksuh_marathon_read_heavy, LockKind::Ksuh, 95);
marathon_test!(ksuh_marathon_mixed, LockKind::Ksuh, 50);
marathon_test!(solaris_marathon_mixed, LockKind::SolarisLike, 50);
marathon_test!(mcs_rw_marathon_mixed, LockKind::McsRw, 50);
