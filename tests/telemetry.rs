//! Counter-correctness for the telemetry subsystem: N acquisitions must
//! record exactly N events, forced contention must show up as slow-path
//! entries and hand-offs, and the C-SNZI write accounting must expose
//! the paper's tree-vs-centralized contrast.
//!
//! The whole suite needs recording compiled in; `telemetry_off.rs`
//! checks the disabled build.

#![cfg(feature = "telemetry")]

use oll::telemetry::{registry, LockEvent, Telemetry};
use oll::{
    Bravo, CentralizedRwLock, FollLock, GollLock, RollLock, RwHandle, RwLockFamily,
    SolarisLikeRwLock, TimedHandle, TreeShape, UpgradableHandle,
};
use std::time::{Duration, Instant};

const READS: u64 = 40;
const WRITES: u64 = 17;

/// Polls a lock's snapshot until `pred` holds — used to wait for a
/// blocked thread to have *recorded its enqueue* (slow-path events are
/// counted before waiting, exactly so tests can rendezvous on them).
fn wait_for<L: RwLockFamily>(lock: &L, pred: impl Fn(&oll::telemetry::LockSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let snap = lock.telemetry().snapshot().expect("instrumented lock");
        if pred(&snap) {
            return;
        }
        assert!(Instant::now() < deadline, "condition never observed");
        std::thread::yield_now();
    }
}

fn exact_counts<L: RwLockFamily>(lock: L, label: &str) {
    let mut h = lock.handle().unwrap();
    for _ in 0..READS {
        h.lock_read();
        h.unlock_read();
    }
    for _ in 0..WRITES {
        h.lock_write();
        h.unlock_write();
    }
    drop(h);
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    // Exactly one of {fast, slow} per successful acquisition.
    assert_eq!(s.reads(), READS, "{label}: read acquisitions");
    assert_eq!(s.writes(), WRITES, "{label}: write acquisitions");
    assert_eq!(s.read_acquire.count, READS, "{label}: read latency samples");
    assert_eq!(
        s.write_acquire.count, WRITES,
        "{label}: write latency samples"
    );
    assert_eq!(s.read_hold.count, READS, "{label}: read hold samples");
    assert_eq!(s.write_hold.count, WRITES, "{label}: write hold samples");
    // Uncontended single-thread loops never time out or cancel.
    assert_eq!(s.get(LockEvent::Timeout), 0, "{label}");
    assert_eq!(s.get(LockEvent::Cancel), 0, "{label}");
}

#[test]
fn n_acquisitions_record_exactly_n_events() {
    exact_counts(GollLock::new(2), "GOLL");
    exact_counts(FollLock::new(2), "FOLL");
    exact_counts(RollLock::new(2), "ROLL");
    exact_counts(SolarisLikeRwLock::new(2), "Solaris-like");
}

#[test]
fn uninstrumented_baseline_yields_no_snapshot() {
    // Baselines outside the instrumented set carry an inactive handle
    // even in a telemetry build: profile-free by construction.
    let lock = CentralizedRwLock::new(2);
    let mut h = lock.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    drop(h);
    assert!(lock.telemetry().snapshot().is_none());
}

fn concurrent_totals<L: RwLockFamily + Sync>(lock: L, label: &str) {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 250;
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let lock = &lock;
            scope.spawn(move || {
                let mut h = lock.handle().unwrap();
                for i in 0..PER_THREAD {
                    if (i + tid) % 5 == 0 {
                        h.lock_write();
                        h.unlock_write();
                    } else {
                        h.lock_read();
                        h.unlock_read();
                    }
                }
            });
        }
    });
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    let total = (THREADS * PER_THREAD) as u64;
    assert_eq!(
        s.reads() + s.writes(),
        total,
        "{label}: every acquisition counted once"
    );
    assert_eq!(s.writes(), total / 5, "{label}: write share");
    assert_eq!(
        s.read_acquire.count + s.write_acquire.count,
        total,
        "{label}"
    );
    assert_eq!(s.read_hold.count + s.write_hold.count, total, "{label}");
}

#[test]
fn concurrent_mixed_workload_totals_add_up() {
    concurrent_totals(GollLock::new(4), "GOLL");
    concurrent_totals(FollLock::new(4), "FOLL");
    concurrent_totals(RollLock::new(4), "ROLL");
    concurrent_totals(SolarisLikeRwLock::new(4), "Solaris-like");
}

/// Forces readers to queue behind a held writer, then releases: the
/// unlock must be classified as a hand-off to readers.
fn forced_handoff_to_readers<L: RwLockFamily + Sync>(lock: L, label: &str) {
    let mut writer = lock.handle().unwrap();
    writer.lock_write();
    std::thread::scope(|scope| {
        let lock = &lock;
        scope.spawn(move || {
            let mut reader = lock.handle().unwrap();
            reader.lock_read(); // blocks until the writer releases
            reader.unlock_read();
        });
        // The reader records ReadSlow at enqueue time, before waiting.
        wait_for(lock, |s| s.get(LockEvent::ReadSlow) >= 1);
        writer.unlock_write();
    });
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert!(
        s.get(LockEvent::ReadSlow) >= 1,
        "{label}: reader took slow path"
    );
    assert!(
        s.get(LockEvent::HandoffToReaders) >= 1,
        "{label}: writer release handed off to queued readers"
    );
}

/// The mirror image: a writer queues behind an active reader.
fn forced_handoff_to_writer<L: RwLockFamily + Sync>(lock: L, label: &str) {
    let mut reader = lock.handle().unwrap();
    reader.lock_read();
    std::thread::scope(|scope| {
        let lock = &lock;
        scope.spawn(move || {
            let mut writer = lock.handle().unwrap();
            writer.lock_write(); // blocks until the reader departs
            writer.unlock_write();
        });
        wait_for(lock, |s| s.get(LockEvent::WriteSlow) >= 1);
        reader.unlock_read();
    });
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert!(
        s.get(LockEvent::WriteSlow) >= 1,
        "{label}: writer took slow path"
    );
    assert!(
        s.get(LockEvent::HandoffToWriter) >= 1,
        "{label}: last reader handed off to the queued writer"
    );
}

#[test]
fn writer_release_counts_handoff_to_queued_readers() {
    forced_handoff_to_readers(GollLock::new(2), "GOLL");
    forced_handoff_to_readers(SolarisLikeRwLock::new(2), "Solaris-like");
}

#[test]
fn reader_release_counts_handoff_to_queued_writer() {
    forced_handoff_to_writer(GollLock::new(2), "GOLL");
    forced_handoff_to_writer(SolarisLikeRwLock::new(2), "Solaris-like");
}

fn timeouts_are_counted<L, H, F>(make_handle: F, lock: &L, label: &str)
where
    L: RwLockFamily,
    H: TimedHandle,
    F: Fn() -> H,
{
    let mut owner = make_handle();
    owner.lock_write();
    let mut waiter = make_handle();
    let soon = || Instant::now() + Duration::from_millis(5);
    assert!(waiter.lock_read_deadline(soon()).is_err(), "{label}");
    assert!(waiter.lock_write_deadline(soon()).is_err(), "{label}");
    owner.unlock_write();
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert!(
        s.get(LockEvent::Timeout) >= 2,
        "{label}: both expired waits counted ({} recorded)",
        s.get(LockEvent::Timeout)
    );
    // The lock still works after the timeouts.
    waiter.lock_write();
    waiter.unlock_write();
}

#[test]
fn expired_deadline_waits_count_timeouts() {
    let goll = GollLock::new(2);
    timeouts_are_counted(|| goll.handle().unwrap(), &goll, "GOLL");
    let foll = FollLock::new(2);
    timeouts_are_counted(|| foll.handle().unwrap(), &foll, "FOLL");
    let roll = RollLock::new(2);
    timeouts_are_counted(|| roll.handle().unwrap(), &roll, "ROLL");
    let solaris = SolarisLikeRwLock::new(2);
    timeouts_are_counted(|| solaris.handle().unwrap(), &solaris, "Solaris-like");
}

#[test]
fn upgrade_and_downgrade_are_counted() {
    let lock = GollLock::new(2);
    let mut h = lock.handle().unwrap();
    h.lock_read();
    assert!(h.try_upgrade(), "sole reader must upgrade");
    h.downgrade();
    h.unlock_read();
    let s = lock.telemetry().snapshot().unwrap();
    assert_eq!(s.get(LockEvent::Upgrade), 1);
    assert_eq!(s.get(LockEvent::Downgrade), 1);
    assert_eq!(s.get(LockEvent::UpgradeFail), 0);
}

/// §5's scalability argument, as a counter assertion: with arrivals
/// pinned to the C-SNZI tree, a surplus on the shared leaf absorbs
/// reader traffic, so far fewer shared root words are written per read
/// acquisition than with centralized (root-only) arrivals.
#[test]
fn tree_arrivals_write_the_root_less_than_centralized() {
    fn root_writes_per_acquire(threshold: u32) -> f64 {
        let lock = GollLock::builder(2)
            .tree_shape(TreeShape::flat(1)) // both handles share one leaf
            .arrival_threshold(threshold)
            .build();
        let mut pin = lock.handle().unwrap();
        let mut worker = lock.handle().unwrap();
        // Under the tree policy the pinned reader keeps the shared leaf
        // nonzero, so the worker's arrivals never propagate to the root.
        pin.lock_read();
        for _ in 0..200 {
            worker.lock_read();
            worker.unlock_read();
        }
        pin.unlock_read();
        let s = lock.telemetry().snapshot().unwrap();
        assert_eq!(s.reads(), 201);
        s.root_writes_per_acquire().expect("reads were recorded")
    }

    let tree = root_writes_per_acquire(0);
    let centralized = root_writes_per_acquire(u32::MAX);
    assert!(
        tree < centralized,
        "tree policy must write the shared root less: {tree} vs {centralized}"
    );
    // Centralized arrivals touch the root on every acquire/release pair.
    assert!(centralized >= 1.0, "centralized = {centralized}");
    // The pinned-leaf run needs only a bounded handful of root writes.
    assert!(tree < 0.1, "tree = {tree}");
}

/// The adaptive tentpole's zero-overhead pin: an uncontended single
/// reader on an adaptive lock must cost exactly one root CAS per acquire
/// and one per release, with zero tree-node RMWs and no inflation —
/// byte-for-byte the centralized fast path.
#[test]
fn adaptive_uncontended_reader_touches_only_the_root() {
    let lock = GollLock::builder(2).adaptive(true).build();
    assert!(lock.is_adaptive());
    let mut h = lock.handle().unwrap();
    for _ in 0..READS {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);
    assert!(!lock.is_inflated(), "uncontended run must stay root-only");
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(s.get(LockEvent::ArriveDirect), READS);
    assert_eq!(s.get(LockEvent::ArriveTree), 0);
    // Exactly one successful root CAS per acquire and one per release.
    assert_eq!(s.get(LockEvent::CsnziRootWrite), 2 * READS);
    assert_eq!(s.get(LockEvent::CsnziRootCasFail), 0);
    assert_eq!(s.get(LockEvent::CsnziNodeWrite), 0);
    assert_eq!(s.get(LockEvent::CsnziInflate), 0);
    assert_eq!(s.get(LockEvent::CsnziDeflate), 0);
    assert_eq!(s.get(LockEvent::CsnziLeafMigrate), 0);
}

/// Forced tree routing on an adaptive lock records the inflation and the
/// tree arrivals it unlocks.
#[test]
fn adaptive_inflation_is_counted() {
    let lock = GollLock::builder(2)
        .adaptive(true)
        .arrival_threshold(0)
        .build();
    let mut h = lock.handle().unwrap();
    for _ in 0..READS {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);
    assert!(lock.is_inflated());
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(s.get(LockEvent::CsnziInflate), 1, "one tree built");
    assert_eq!(s.get(LockEvent::ArriveTree), READS);
    assert_eq!(s.get(LockEvent::ArriveDirect), 0);
    assert!(s.get(LockEvent::CsnziNodeWrite) > 0);
}

/// The BRAVO tentpole's headline pin: with the bias armed, a read-only
/// run performs *zero* shared-memory RMWs per read acquisition — no
/// C-SNZI root or node writes, no arrivals at all. Every read is a bias
/// grant through the visible-readers table (a CAS on an effectively
/// thread-private line). A private table keeps concurrently running
/// tests out of this lock's hash space.
#[test]
fn biased_read_only_run_performs_zero_shared_rmws() {
    let lock = Bravo::wrapping(GollLock::builder(2).adaptive(true).build(), true).private_table(64);
    let mut h = lock.handle().unwrap();
    for _ in 0..READS {
        h.lock_read();
        h.unlock_read();
    }
    drop(h);
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(s.get(LockEvent::BiasGrant), READS, "every read was biased");
    assert_eq!(s.reads(), READS);
    // The underlying lock was never touched: zero shared RMWs per read.
    assert_eq!(s.get(LockEvent::ArriveDirect), 0);
    assert_eq!(s.get(LockEvent::ArriveTree), 0);
    assert_eq!(s.get(LockEvent::CsnziRootWrite), 0);
    assert_eq!(s.get(LockEvent::CsnziNodeWrite), 0);
    assert_eq!(s.get(LockEvent::CsnziRootCasFail), 0);
    assert_eq!(s.get(LockEvent::BiasRevoke), 0);
    assert_eq!(s.get(LockEvent::BiasSlotCollision), 0);
    // Latency accounting still covers every acquisition.
    assert_eq!(s.read_acquire.count, READS);
    assert_eq!(s.read_hold.count, READS);
}

/// A writer through the wrapper must revoke exactly once, and the biased
/// counters must stay consistent through a mixed sequence.
#[test]
fn bias_revocation_and_rearm_are_counted() {
    let lock = Bravo::wrapping(GollLock::new(2), true)
        .private_table(64)
        .rearm_multiplier(0); // re-arm immediately on the next slow read
    let mut h = lock.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    h.lock_write();
    h.unlock_write();
    // The bias is now revoked; this read takes the slow path and re-arms.
    h.lock_read();
    h.unlock_read();
    // Re-armed: this read is biased again.
    h.lock_read();
    h.unlock_read();
    drop(h);
    let s = lock.telemetry().snapshot().expect("instrumented lock");
    assert_eq!(s.get(LockEvent::BiasRevoke), 1);
    assert_eq!(s.get(LockEvent::BiasRearm), 1);
    assert_eq!(s.get(LockEvent::BiasGrant), 2, "first and last reads");
    assert_eq!(s.reads(), 3);
    assert_eq!(s.writes(), 1);
}

#[test]
fn registry_sweeps_and_renames() {
    let lock = GollLock::builder(2)
        .telemetry_name("telemetry-test/registry")
        .build();
    let mut h = lock.handle().unwrap();
    h.lock_read();
    h.unlock_read();
    drop(h);
    assert_eq!(
        lock.telemetry().name().as_deref(),
        Some("telemetry-test/registry")
    );
    let snaps = registry::snapshot_all();
    let mine = snaps
        .iter()
        .find(|s| s.name == "telemetry-test/registry")
        .expect("registered lock appears in the global sweep");
    assert_eq!(mine.kind, "GOLL");
    assert_eq!(mine.reads(), 1);
    assert!(Telemetry::enabled());
}

#[test]
fn reset_zeroes_counters() {
    let lock = FollLock::new(2);
    let mut h = lock.handle().unwrap();
    h.lock_write();
    h.unlock_write();
    drop(h);
    assert!(!lock.telemetry().snapshot().unwrap().is_empty());
    lock.telemetry().reset();
    assert!(lock.telemetry().snapshot().unwrap().is_empty());
}
